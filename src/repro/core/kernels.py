"""Pluggable kernel backends: the two whole-batch primitives under NOVA.

Everything the serving stack executes on the overlay — attention
nonlinearities, decode softmax phases, speculative verification passes —
bottoms out in exactly two whole-batch operations:

* :meth:`KernelBackend.table_gather_mac` — quantise a stream of PE
  outputs, address the PWL table (segment-index gather) and apply the
  fused fixed-point ``slope * x + bias`` MAC, returning the outputs and
  the lookup addresses in one launch.
* :meth:`KernelBackend.tag_match_totals` — the closed-form per-router
  ``tag_match`` accounting for those addresses: a lane whose address
  selects beat ``b`` performs one tag comparison on each of beats
  ``0..b``, so its exact contribution is ``(address & (n_beats - 1)) + 1``.

:class:`NumpyBackend` is the vectorised path PR 1 built into
:meth:`~repro.core.vector_unit.NovaVectorUnit._stream_vectorized`,
refactored out so it is one registry entry among several.
:class:`LoopbackBackend` pins the pre-refactor per-batch Python loop as
a wall-clock reference (still bit-exact — it is what
``benchmarks/bench_kernel_backends.py`` measures speedups against).
:class:`NumbaBackend` and :class:`JaxBackend` are optional drop-ins
behind lazy imports: when the package is missing,
:func:`resolve_backend` warns and falls back to numpy rather than
failing, so a config that names them stays runnable everywhere.

Exactness is the contract, not a goal: every backend must be
bit-identical to :meth:`~repro.approx.quantize.QuantizedPwl.lookup` +
:meth:`~repro.utils.fixed_point.FixedPointFormat.mac` (and therefore to
the beat-level NoC simulation) on all inputs.  The backend-equivalence
suite in ``tests/test_kernels.py`` enforces this per installed backend
per preset; the per-preset goldens enforce it transitively for whatever
backend the config selects.

Kernel code is *pure* by construction (novalint rule NV009): backends
never touch :class:`~repro.noc.stats.EventCounters`, the NoC, or any
engine/pool state — counter charging stays with the owning
:class:`~repro.core.vector_unit.NovaVectorUnit`.  The only state in this
module is the process-wide launch/element tally surfaced through
:func:`kernel_cache_info` (and ``NovaSession.cache_info()["kernels"]``).
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Any, Callable, Protocol, runtime_checkable

import numpy as np

if TYPE_CHECKING:
    from repro.approx.quantize import QuantizedPwl

__all__ = [
    "KernelBackend",
    "NumpyBackend",
    "LoopbackBackend",
    "NumbaBackend",
    "JaxBackend",
    "BACKENDS",
    "resolve_backend",
    "available_backends",
    "kernel_cache_info",
    "reset_kernel_stats",
]


@runtime_checkable
class KernelBackend(Protocol):
    """The two whole-batch primitives every execution backend provides.

    Implementations are stateless value transformers: arrays in, arrays
    out, no counter or engine mutation (NV009).  ``table_gather_mac``
    must be bit-identical to
    ``table.lookup(xs)`` + ``table.output_format.mac`` for every input;
    ``tag_match_totals`` must equal what per-beat simulation
    accumulates.
    """

    #: Registry name (``config.kernel_backend`` value).
    name: str

    def table_gather_mac(
        self, table: "QuantizedPwl", xs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Quantise, gather and MAC a whole stream at once.

        ``xs`` has shape ``(n_batches, n_routers, n_neurons)`` (any
        float shape is accepted — the primitive is elementwise).
        Returns ``(outputs, addresses)`` of the same shape, ``outputs``
        float64 and ``addresses`` int64 segment indices.
        """
        ...

    def tag_match_totals(
        self, addresses: np.ndarray, n_beats: int
    ) -> np.ndarray:
        """Per-router ``tag_match`` totals for a stream of addresses.

        ``addresses`` has shape ``(n_batches, n_routers, n_neurons)``;
        returns int64 totals of shape ``(n_routers,)`` — the sum over
        the router's lanes of ``(address & (n_beats - 1)) + 1``.
        """
        ...


# ----------------------------------------------------------------------
# Launch/element accounting (the only state this module holds)
# ----------------------------------------------------------------------

#: Per-backend launch and element tallies, process-wide.  These are
#: observability stats, not hardware event counters: EventCounters stay
#: with the engines that own them (NV006/NV009).
_STATS: dict[str, dict[str, int]] = {}


def _record_launch(name: str, elements: int, launches: int = 1) -> None:
    stats = _STATS.setdefault(name, {"launches": 0, "elements": 0})
    stats["launches"] += launches
    stats["elements"] += elements


def reset_kernel_stats() -> None:
    """Clear the process-wide launch/element tallies (test isolation)."""
    _STATS.clear()


def _closed_form_tag_totals(addresses: np.ndarray, n_beats: int) -> np.ndarray:
    """Vectorised per-router ``tag_match`` totals (int64, exact).

    Shared by every vectorised backend: the reduction is integer, so
    there is no summation-order subtlety to mirror per backend.
    """
    addresses = np.asarray(addresses)
    beats = addresses & (n_beats - 1)
    per_router = addresses.shape[0] * addresses.shape[2]
    totals: np.ndarray = beats.sum(axis=(0, 2), dtype=np.int64)
    return totals + per_router


def kernel_cache_info() -> dict[str, Any]:
    """Registry and launch stats, for ``NovaSession.cache_info()``.

    ``registered`` lists every name the registry accepts;
    ``available`` the subset whose dependencies import in this process
    (numpy and loopback always; numba/jax only when installed);
    ``backends`` maps each backend that has launched to its cumulative
    ``launches`` / ``elements`` tallies.
    """
    return {
        "registered": sorted(BACKENDS),
        "available": list(available_backends()),
        "backends": {
            name: dict(stats) for name, stats in sorted(_STATS.items())
        },
    }


# ----------------------------------------------------------------------
# numpy: the default whole-stream gather (PR 1's fast path, extracted)
# ----------------------------------------------------------------------


class NumpyBackend:
    """One whole-stream ``searchsorted`` gather + fused MAC in numpy."""

    name = "numpy"

    def table_gather_mac(
        self, table: "QuantizedPwl", xs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        xs = np.asarray(xs, dtype=np.float64)
        xq, idx = table.lookup(xs)
        quantized = table.quantized_pwl
        outputs = table.output_format.mac(
            quantized.slopes[idx], xq, quantized.biases[idx]
        )
        _record_launch(self.name, xs.size)
        return outputs, idx

    def tag_match_totals(
        self, addresses: np.ndarray, n_beats: int
    ) -> np.ndarray:
        return _closed_form_tag_totals(addresses, n_beats)


# ----------------------------------------------------------------------
# loopback: the pre-refactor per-batch Python loop, pinned as reference
# ----------------------------------------------------------------------


class LoopbackBackend:
    """Per-batch, per-router Python iteration — the wall-clock baseline.

    Reproduces how the stack executed before the whole-batch kernels:
    one small table lookup + MAC per router row per batch, paying the
    Python/numpy dispatch overhead on every token the way the per-token
    decode loop did.  Bit-exact (the per-row ops are the same
    elementwise numerics), deliberately slow, and pinned so
    ``benchmarks/bench_kernel_backends.py`` has a stable denominator.
    """

    name = "loopback"

    def table_gather_mac(
        self, table: "QuantizedPwl", xs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        xs = np.asarray(xs, dtype=np.float64)
        quantized = table.quantized_pwl
        outputs = np.empty_like(xs)
        addresses = np.empty(xs.shape, dtype=np.int64)
        launches = 0
        for t in range(xs.shape[0]):
            for r in range(xs.shape[1]):
                xq, idx = table.lookup(xs[t, r])
                outputs[t, r] = table.output_format.mac(
                    quantized.slopes[idx], xq, quantized.biases[idx]
                )
                addresses[t, r] = idx
                launches += 1
        _record_launch(self.name, xs.size, launches=max(launches, 1))
        return outputs, addresses

    def tag_match_totals(
        self, addresses: np.ndarray, n_beats: int
    ) -> np.ndarray:
        addresses = np.asarray(addresses)
        n_batches, n_routers, n_neurons = addresses.shape
        totals = np.zeros(n_routers, dtype=np.int64)
        for t in range(n_batches):
            for r in range(n_routers):
                row = addresses[t, r] & (n_beats - 1)
                totals[r] += int(row.sum()) + n_neurons
        return totals


# ----------------------------------------------------------------------
# numba: JIT-compiled elementwise kernel (optional dependency)
# ----------------------------------------------------------------------


def _numba_compile() -> Callable[..., None]:
    """Build the njit gather/MAC kernel (raises ImportError sans numba)."""
    import numba  # noqa: F401 — probes the optional dependency

    @numba.njit(cache=False)
    def gather_mac(  # type: ignore[no-any-unimported]
        x: np.ndarray,
        cuts: np.ndarray,
        slopes: np.ndarray,
        biases: np.ndarray,
        dom_lo: float,
        dom_hi: float,
        in_scale: float,
        in_min_raw: float,
        in_max_raw: float,
        out_scale: float,
        out_min_raw: float,
        out_max_raw: float,
        out: np.ndarray,
        idx: np.ndarray,
    ) -> None:
        n_cuts = cuts.shape[0]
        for i in range(x.shape[0]):
            # PiecewiseLinear.clamp: np.clip into the domain (NaN passes)
            c = x[i]
            if c < dom_lo:
                c = dom_lo
            elif c > dom_hi:
                c = dom_hi
            # FixedPointFormat.quantize: round-half-even, saturate, rescale
            raw = np.rint(c / in_scale)
            if raw < in_min_raw:
                raw = in_min_raw
            elif raw > in_max_raw:
                raw = in_max_raw
            xq = raw * in_scale
            # segment_index re-clamps the representable value into the
            # domain before the comparator search (quantisation can step
            # just past an endpoint)
            c2 = xq
            if c2 < dom_lo:
                c2 = dom_lo
            elif c2 > dom_hi:
                c2 = dom_hi
            # searchsorted(cuts, c2, side="right"): count of cuts <= c2
            lo = 0
            hi = n_cuts
            while lo < hi:
                mid = (lo + hi) // 2
                if c2 < cuts[mid]:
                    hi = mid
                else:
                    lo = mid + 1
            idx[i] = lo
            # FixedPointFormat.mac: full-precision product + bias,
            # rounded and saturated back into the output format
            total = slopes[lo] * xq + biases[lo]
            oraw = np.rint(total / out_scale)
            if oraw < out_min_raw:
                oraw = out_min_raw
            elif oraw > out_max_raw:
                oraw = out_max_raw
            out[i] = oraw * out_scale

    return gather_mac


class NumbaBackend:
    """JIT-compiled elementwise gather/MAC (requires ``numba``).

    The kernel mirrors the golden numerics op for op in scalar IEEE
    double arithmetic — clamp, round-half-even quantise, bisect-right
    comparator search, fused MAC with output saturation — so results
    are bit-identical to :class:`NumpyBackend` (enforced by the
    equivalence suite on installs that have numba).
    """

    name = "numba"

    def __init__(self) -> None:
        # Raises ImportError when numba is absent; resolve_backend turns
        # that into a warning + numpy fallback.
        self._gather_mac = _numba_compile()

    def table_gather_mac(
        self, table: "QuantizedPwl", xs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        xs = np.asarray(xs, dtype=np.float64)
        quantized = table.quantized_pwl
        flat = np.ascontiguousarray(xs.reshape(-1))
        out = np.empty_like(flat)
        idx = np.empty(flat.shape, dtype=np.int64)
        dom_lo, dom_hi = quantized.domain
        in_fmt = table.input_format
        out_fmt = table.output_format
        self._gather_mac(
            flat,
            np.ascontiguousarray(quantized.cuts, dtype=np.float64),
            np.ascontiguousarray(quantized.slopes, dtype=np.float64),
            np.ascontiguousarray(quantized.biases, dtype=np.float64),
            float(dom_lo),
            float(dom_hi),
            in_fmt.scale,
            float(in_fmt.min_raw),
            float(in_fmt.max_raw),
            out_fmt.scale,
            float(out_fmt.min_raw),
            float(out_fmt.max_raw),
            out,
            idx,
        )
        _record_launch(self.name, xs.size)
        return out.reshape(xs.shape), idx.reshape(xs.shape)

    def tag_match_totals(
        self, addresses: np.ndarray, n_beats: int
    ) -> np.ndarray:
        # int64 reduction — numpy is already exact and optimal here
        return _closed_form_tag_totals(addresses, n_beats)


# ----------------------------------------------------------------------
# jax: XLA-backed drop-in (optional dependency; needs x64)
# ----------------------------------------------------------------------


class JaxBackend:
    """XLA-backed gather/MAC (requires ``jax``; enables x64 numerics).

    Mirrors the golden pipeline with ``jax.numpy`` ops in float64 —
    bit-exactness requires the x64 flag, which the constructor enables
    process-wide (jax's documented switch for double precision).
    """

    name = "jax"

    def __init__(self) -> None:
        import jax  # Raises ImportError when jax is absent.

        jax.config.update("jax_enable_x64", True)
        import jax.numpy as jnp

        self._jnp = jnp

    def table_gather_mac(
        self, table: "QuantizedPwl", xs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        jnp = self._jnp
        xs = np.asarray(xs, dtype=np.float64)
        quantized = table.quantized_pwl
        in_fmt = table.input_format
        out_fmt = table.output_format
        dom_lo, dom_hi = quantized.domain
        x = jnp.asarray(xs, dtype=jnp.float64)
        clamped = jnp.clip(x, dom_lo, dom_hi)
        raw = jnp.clip(
            jnp.rint(clamped / in_fmt.scale), in_fmt.min_raw, in_fmt.max_raw
        )
        xq = raw * in_fmt.scale
        idx = jnp.searchsorted(
            jnp.asarray(quantized.cuts, dtype=jnp.float64),
            jnp.clip(xq, dom_lo, dom_hi),
            side="right",
        ).astype(jnp.int64)
        slopes = jnp.asarray(quantized.slopes, dtype=jnp.float64)
        biases = jnp.asarray(quantized.biases, dtype=jnp.float64)
        total = slopes[idx] * xq + biases[idx]
        oraw = jnp.clip(
            jnp.rint(total / out_fmt.scale), out_fmt.min_raw, out_fmt.max_raw
        )
        outputs = np.asarray(oraw * out_fmt.scale, dtype=np.float64)
        _record_launch(self.name, xs.size)
        return outputs, np.asarray(idx, dtype=np.int64)

    def tag_match_totals(
        self, addresses: np.ndarray, n_beats: int
    ) -> np.ndarray:
        # int64 reduction — numpy is already exact and optimal here
        return _closed_form_tag_totals(addresses, n_beats)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

#: Backend name -> zero-arg factory.  ``config.kernel_backend`` values
#: validate against these keys (mirrored in
#: :data:`repro.core.config.KERNEL_BACKENDS`).
BACKENDS: dict[str, Callable[[], KernelBackend]] = {
    "numpy": NumpyBackend,
    "loopback": LoopbackBackend,
    "numba": NumbaBackend,
    "jax": JaxBackend,
}

#: Memoised instances (numba compiles a kernel; jax flips a global flag
#: — both are once-per-process costs).
_INSTANCES: dict[str, KernelBackend] = {}


def resolve_backend(name: str) -> KernelBackend:
    """Instantiate the named backend, falling back gracefully.

    Unknown names raise ``ValueError`` listing the registry (config
    validation catches these earlier; this is the backstop for direct
    callers).  Optional backends whose dependency is missing warn
    (``RuntimeWarning``) and return the numpy backend, so serving a
    config that names numba/jax degrades instead of crashing on hosts
    without the package.
    """
    if name not in BACKENDS:
        known = ", ".join(sorted(BACKENDS))
        raise ValueError(f"unknown kernel backend {name!r}; known: {known}")
    if name in _INSTANCES:
        return _INSTANCES[name]
    try:
        backend = BACKENDS[name]()
    except ImportError as err:
        warnings.warn(
            f"kernel backend {name!r} needs an optional dependency that "
            f"is not installed ({err}); falling back to the numpy backend",
            RuntimeWarning,
            stacklevel=2,
        )
        backend = resolve_backend("numpy")
    _INSTANCES[name] = backend
    return backend


def available_backends() -> tuple[str, ...]:
    """Registry names whose dependencies import in this process.

    This is what the equivalence tests parametrise over: numpy and
    loopback always qualify; numba/jax only where installed.
    """
    names = []
    for name, factory in sorted(BACKENDS.items()):
        if name in _INSTANCES and _INSTANCES[name].name == name:
            names.append(name)
            continue
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                backend = factory()
        except ImportError:
            continue
        _INSTANCES.setdefault(name, backend)
        names.append(name)
    return tuple(names)
