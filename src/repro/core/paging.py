"""Paged KV cache: a global block pool plus per-request block tables.

PR 3's decode memory model was "one contiguous page per request, sized
for the worst case": admission reserved ``max_seq_len`` slots up front,
so short requests stranded memory and heterogeneous batches could not
share the pool.  This module replaces that with the vLLM-style layout
the ROADMAP names:

* :class:`BlockPool` — owns **all** KV storage as fixed-size blocks of
  ``block_size`` token slots (``NovaConfig.kv_block_size`` sets the
  default).  Blocks are allocated and freed by id; the pool never
  reallocates, so an append is always a row write into a live block.
* :class:`BlockTable` — one per request: the ordered list of physical
  block ids holding the request's logical token positions, plus the
  offset of the first live token inside the first block (sliding-window
  eviction advances the offset and frees whole head blocks).
* :class:`PagedKVCache` — presents the exact
  :class:`~repro.core.decode.KVCache` API (``append`` / ``evict`` /
  ``truncate`` / ``keys`` / ``values`` / ``values_snapshot`` /
  ``reset``) on top of the block-table indirection, so the decode
  engines run unchanged on either cache.  ``truncate`` is the
  speculative-decode rollback path: rejected draft tokens free whole
  tail blocks back to the pool.

Numerics contract
-----------------
Paging changes **where** K/V rows live, never their values: ``keys`` /
``values`` / ``values_snapshot`` gather the live span into a fresh
contiguous array holding bit-identical floats in the same order a
contiguous :class:`~repro.core.decode.KVCache` would present, so every
downstream GEMV (scores, context) is bit-exact between the two layouts.
The equivalence gate in ``tests/test_paging.py`` pins this per Table II
preset, and the golden traces prove the cycle/counter accounting is
untouched.

Accounting
----------
The pool tracks cumulative ``blocks_allocated`` / ``blocks_freed``,
current ``in_use`` / ``free``, ``peak_in_use`` and the fragmentation
metric (allocated-but-unused token slots: block slots held by live
caches that no cached token occupies).  :meth:`BlockPool.pool_info`
reports them all, :func:`pool_cache_info` aggregates across every live
pool in the process (surfaced through
:meth:`repro.core.session.NovaSession.cache_info`), and the invariants
``n_blocks == in_use + free`` and
``blocks_allocated - blocks_freed == in_use`` are pinned by the suite.
"""

from __future__ import annotations

import threading
import weakref
from collections.abc import Callable

import numpy as np

__all__ = [
    "BlockPool",
    "BlockPoolExhausted",
    "BlockTable",
    "PagedKVCache",
    "blocks_needed",
    "worst_case_blocks",
    "pool_cache_info",
]


class BlockPoolExhausted(RuntimeError):
    """Allocating from a :class:`BlockPool` with no free blocks."""


#: Every live pool in the process, for :func:`pool_cache_info`.
_LIVE_POOLS: "weakref.WeakSet[BlockPool]" = weakref.WeakSet()
_POOLS_LOCK = threading.Lock()
_POOLS_CREATED = 0


def blocks_needed(tokens: int, block_size: int) -> int:
    """Blocks required to hold ``tokens`` consecutive token slots."""
    return -(-tokens // block_size)


def worst_case_blocks(
    total_tokens: int, window: int | None, block_size: int
) -> int:
    """Most blocks one request can hold at once over its lifetime.

    Windowless requests keep every appended token.  Windowed requests
    keep at most ``window`` tokens, which can straddle one extra block
    while the head offset walks through the first block — but never
    more than the unwindowed bound.
    """
    if window is None or total_tokens <= window:
        return blocks_needed(total_tokens, block_size)
    return min(
        blocks_needed(window, block_size) + 1,
        blocks_needed(total_tokens, block_size),
    )


class BlockPool:
    """All KV storage for one geometry, as fixed-size blocks.

    Storage is two preallocated ``(n_blocks, n_heads, block_size,
    head_dim)`` float64 arrays (keys and values); a block id indexes the
    leading axis.  :meth:`allocate` pops a free id (raising
    :class:`BlockPoolExhausted` when the pool is dry — the caller's
    deferral/preemption policy decides what happens next), :meth:`free`
    returns it (double-free raises ``ValueError``).

    ``live_tokens`` is maintained by the :class:`PagedKVCache` instances
    drawing from the pool; ``fragmentation_slots`` — the paged analogue
    of the contiguous layout's stranded worst-case pages — is the gap
    between the slots held (``in_use * block_size``) and the tokens
    actually cached.
    """

    def __init__(
        self, n_heads: int, head_dim: int, block_size: int, n_blocks: int
    ) -> None:
        if n_heads < 1:
            raise ValueError(f"n_heads must be >= 1, got {n_heads}")
        if head_dim < 1:
            raise ValueError(f"head_dim must be >= 1, got {head_dim}")
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        if n_blocks < 1:
            raise ValueError(f"n_blocks must be >= 1, got {n_blocks}")
        self.n_heads = n_heads
        self.head_dim = head_dim
        self.block_size = block_size
        self.n_blocks = n_blocks
        self._k = np.zeros((n_blocks, n_heads, block_size, head_dim))
        self._v = np.zeros((n_blocks, n_heads, block_size, head_dim))
        self._free: list[int] = list(range(n_blocks - 1, -1, -1))
        self._live = np.zeros(n_blocks, dtype=bool)
        self.blocks_allocated = 0
        self.blocks_freed = 0
        self.peak_in_use = 0
        self.live_tokens = 0
        global _POOLS_CREATED
        with _POOLS_LOCK:
            _POOLS_CREATED += 1
            _LIVE_POOLS.add(self)

    # -- geometry -------------------------------------------------------

    @property
    def block_bytes(self) -> int:
        """Bytes one block occupies (keys plus values, float64)."""
        return 2 * 8 * self.n_heads * self.block_size * self.head_dim

    @classmethod
    def from_bytes(
        cls, n_heads: int, head_dim: int, block_size: int, pool_bytes: int
    ) -> "BlockPool":
        """The largest pool fitting a byte budget (>= 1 block required)."""
        block_bytes = 2 * 8 * n_heads * block_size * head_dim
        n_blocks = pool_bytes // block_bytes
        if n_blocks < 1:
            raise ValueError(
                f"pool_bytes ({pool_bytes}) smaller than one "
                f"{block_size}-token block ({block_bytes} bytes)"
            )
        return cls(n_heads, head_dim, block_size, n_blocks)

    # -- allocation -----------------------------------------------------

    @property
    def free_blocks(self) -> int:
        """Blocks available for allocation right now."""
        return len(self._free)

    @property
    def in_use(self) -> int:
        """Blocks currently held by block tables."""
        return self.n_blocks - len(self._free)

    def allocate(self) -> int:
        """Pop a free block id; raises :class:`BlockPoolExhausted` dry."""
        if not self._free:
            raise BlockPoolExhausted(
                f"block pool dry: all {self.n_blocks} blocks of "
                f"{self.block_size} tokens are in use (defer the request "
                "or preempt a sequence to free blocks)"
            )
        block = self._free.pop()
        self._live[block] = True
        self.blocks_allocated += 1
        self.peak_in_use = max(self.peak_in_use, self.in_use)
        return block

    def free(self, block: int) -> None:
        """Return a block to the pool; double-free raises ``ValueError``."""
        if not 0 <= block < self.n_blocks:
            raise ValueError(
                f"block id {block} outside pool of {self.n_blocks} blocks"
            )
        if not self._live[block]:
            raise ValueError(
                f"double free of block {block}: it is already in the free "
                "list"
            )
        self._live[block] = False
        self._free.append(block)
        self.blocks_freed += 1

    # -- storage views --------------------------------------------------

    def keys_of(self, block: int) -> np.ndarray:
        """Key storage of one live block, ``(n_heads, block_size, head_dim)``."""
        return self._k[block]

    def values_of(self, block: int) -> np.ndarray:
        """Value storage of one live block, same shape as :meth:`keys_of`."""
        return self._v[block]

    # -- accounting -----------------------------------------------------

    @property
    def fragmentation_slots(self) -> int:
        """Allocated-but-unused token slots across all live block tables."""
        return self.in_use * self.block_size - self.live_tokens

    def pool_info(self) -> dict[str, int]:
        """Every accounting counter, as one plain dict.

        Invariants (pinned by the suite): ``n_blocks == in_use + free``
        and ``blocks_allocated - blocks_freed == in_use``.
        """
        return {
            "block_size": self.block_size,
            "block_bytes": self.block_bytes,
            "n_blocks": self.n_blocks,
            "in_use": self.in_use,
            "free": self.free_blocks,
            "blocks_allocated": self.blocks_allocated,
            "blocks_freed": self.blocks_freed,
            "peak_in_use": self.peak_in_use,
            "live_tokens": self.live_tokens,
            "fragmentation_slots": self.fragmentation_slots,
        }

    def __repr__(self) -> str:
        return (
            f"BlockPool({self.n_blocks} x {self.block_size} tokens, "
            f"{self.n_heads} heads x {self.head_dim}, "
            f"{self.in_use} in use)"
        )


def pool_cache_info() -> dict[str, int]:
    """Process-wide block-pool statistics (every live pool aggregated).

    The paging analogue of
    :func:`repro.approx.table_cache.table_cache_info`, surfaced through
    :meth:`repro.core.session.NovaSession.cache_info`.
    """
    with _POOLS_LOCK:
        pools = list(_LIVE_POOLS)
    return {
        "pools_created": _POOLS_CREATED,
        "live_pools": len(pools),
        "n_blocks": sum(p.n_blocks for p in pools),
        "in_use": sum(p.in_use for p in pools),
        "free": sum(p.free_blocks for p in pools),
        # Cumulative totals.  Every free path — window eviction
        # (:meth:`PagedKVCache.evict`), speculative rollback
        # (:meth:`PagedKVCache.truncate`) and page recycling
        # (:meth:`PagedKVCache.reset`) — goes through
        # :meth:`BlockPool.free`, so ``blocks_freed`` counts them
        # identically (the suite pins ``blocks_allocated - blocks_freed
        # == in_use`` across all three).
        "blocks_allocated": sum(p.blocks_allocated for p in pools),
        "blocks_freed": sum(p.blocks_freed for p in pools),
        "peak_in_use": sum(p.peak_in_use for p in pools),
        "live_tokens": sum(p.live_tokens for p in pools),
        "fragmentation_slots": sum(p.fragmentation_slots for p in pools),
    }


class BlockTable:
    """Logical-to-physical mapping of one request's cached tokens.

    ``blocks[i]`` is the physical block holding logical slots
    ``[i * block_size, (i + 1) * block_size)`` of the table's own slot
    space; ``first_offset`` is the slot index of the oldest live token
    (sliding-window eviction advances it instead of shifting rows).
    """

    __slots__ = ("blocks", "first_offset")

    def __init__(self) -> None:
        self.blocks: list[int] = []
        self.first_offset = 0

    @property
    def n_blocks(self) -> int:
        """Physical blocks currently mapped."""
        return len(self.blocks)

    def physical(self, slot: int, block_size: int) -> tuple[int, int]:
        """``(block_id, offset)`` of one absolute table slot."""
        return self.blocks[slot // block_size], slot % block_size

    def __repr__(self) -> str:
        return (
            f"BlockTable({self.n_blocks} blocks, "
            f"first_offset={self.first_offset})"
        )


class PagedKVCache:
    """The :class:`~repro.core.decode.KVCache` API over a block table.

    Drop-in for the contiguous cache: same constructor-equivalent fields
    (``n_heads`` / ``head_dim`` come from the pool), same ``append`` /
    ``evict`` / ``reset`` semantics, same ``keys`` / ``values`` /
    ``values_snapshot`` shapes and values.  The differences are all on
    the memory side:

    * storage is borrowed from the shared :class:`BlockPool`, one block
      at a time, **lazily on append** — an idle request holds zero
      blocks, a short request holds ``ceil(tokens / block_size)``, never
      a worst-case page;
    * a full pool makes ``append`` raise
      :class:`BlockPoolExhausted` *before any state changes*, so the
      scheduler can defer the token and retry the same step later;
    * sliding-window eviction advances ``first_offset`` and frees whole
      head blocks back to the pool instead of shifting arrays;
    * ``reset`` frees every block (page recycling is the pool itself).
    """

    def __init__(
        self,
        pool: BlockPool,
        capacity: int,
        window: int | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if window is not None:
            if window < 1:
                raise ValueError(f"window must be >= 1, got {window}")
            if window > capacity:
                raise ValueError(
                    f"window ({window}) cannot exceed capacity ({capacity})"
                )
        self.pool = pool
        self.capacity = capacity
        self.window = window
        self.table = BlockTable()
        self.length = 0
        self.start_position = 0
        self.evictions = 0

    # -- KVCache-compatible geometry -----------------------------------

    @property
    def n_heads(self) -> int:
        """Per-token head count (the pool's)."""
        return self.pool.n_heads

    @property
    def head_dim(self) -> int:
        """Per-head width (the pool's)."""
        return self.pool.head_dim

    @property
    def block_size(self) -> int:
        """Tokens per block (the pool's)."""
        return self.pool.block_size

    @property
    def limit(self) -> int:
        """Maximum entries held at once (``window`` if set, else capacity)."""
        return self.capacity if self.window is None else self.window

    @property
    def blocks_in_use(self) -> int:
        """Physical blocks this cache currently holds."""
        return self.table.n_blocks

    @property
    def fragmentation_slots(self) -> int:
        """Slots this cache holds that no live token occupies."""
        return self.table.n_blocks * self.block_size - self.length

    def can_serve(self, n_heads: int, head_dim: int, capacity: int) -> bool:
        """Whether this cache can hold a request of the given geometry."""
        return (
            self.n_heads == n_heads
            and self.head_dim == head_dim
            and self.capacity >= capacity
        )

    # -- gathered views -------------------------------------------------

    def _gather(
        self, storage_of: Callable[[int], np.ndarray], kv_len: int
    ) -> np.ndarray:
        """First ``kv_len`` live rows as one fresh contiguous array."""
        out = np.empty((self.n_heads, kv_len, self.head_dim))
        bs = self.block_size
        start = self.table.first_offset
        stop = start + kv_len
        for i, block in enumerate(self.table.blocks):
            lo = max(start, i * bs)
            hi = min(stop, (i + 1) * bs)
            if lo >= hi:
                continue
            out[:, lo - start : hi - start] = storage_of(block)[
                :, lo - i * bs : hi - i * bs
            ]
        return out

    @property
    def keys(self) -> np.ndarray:
        """The live cached keys, ``(n_heads, length, head_dim)``
        (gathered copy — bit-identical to the contiguous layout's view)."""
        return self._gather(self.pool.keys_of, self.length)

    @property
    def values(self) -> np.ndarray:
        """The live cached values, ``(n_heads, length, head_dim)``."""
        return self._gather(self.pool.values_of, self.length)

    def values_snapshot(self, kv_len: int) -> np.ndarray:
        """Contiguous copy of the first ``kv_len`` live values (the
        decode engines' deferred-snapshot hook; see
        ``KVCache.values_snapshot``)."""
        return self._gather(self.pool.values_of, kv_len)

    # -- mutation -------------------------------------------------------

    def append(self, k_t: np.ndarray, v_t: np.ndarray) -> None:
        """Append one token's per-head key/value rows.

        Identical contract to ``KVCache.append`` plus the pool
        dimension: a new block is allocated lazily when the tail slot
        crosses a block boundary, and :class:`BlockPoolExhausted`
        propagates *before any cache state changes* (no partial evict,
        no length change) — the append is atomic — so a scheduler can
        treat it as "defer this token and retry after blocks free up".
        """
        from repro.core.decode import KVCacheOverflow

        expected = (self.n_heads, self.head_dim)
        k_t = np.asarray(k_t, dtype=np.float64)
        v_t = np.asarray(v_t, dtype=np.float64)
        if k_t.shape != expected or v_t.shape != expected:
            raise ValueError(
                f"expected per-token k/v of shape {expected}, got "
                f"{k_t.shape} / {v_t.shape}"
            )
        bs = self.block_size
        if self.length == self.limit:
            if self.window is None:
                raise KVCacheOverflow(
                    f"KV cache full at capacity {self.capacity} "
                    f"(position {self.start_position + self.length}); "
                    "set a window for sliding eviction or raise "
                    "max_seq_len"
                )
            # Atomicity: the evicting append needs a tail block exactly
            # when the tail slot sits on the block grid; eviction frees
            # the head block exactly when the head offset reaches the
            # grid.  Check the pool *before* mutating so exhaustion
            # leaves the cache untouched.
            tail = self.table.first_offset + self.length
            needs_block = tail == self.table.n_blocks * bs
            evict_frees = self.table.first_offset + 1 == bs
            if needs_block and not evict_frees and not self.pool.free_blocks:
                raise BlockPoolExhausted(
                    f"block pool dry: windowed append needs a tail block "
                    f"but all {self.pool.n_blocks} blocks are in use"
                )
            self.evict(1)
        if self.table.first_offset + self.length == self.table.n_blocks * bs:
            self.table.blocks.append(self.pool.allocate())
        block, offset = self.table.physical(
            self.table.first_offset + self.length, bs
        )
        self.pool.keys_of(block)[:, offset] = k_t
        self.pool.values_of(block)[:, offset] = v_t
        self.length += 1
        self.pool.live_tokens += 1

    def evict(self, n: int) -> None:
        """Drop the ``n`` oldest cached tokens, freeing whole head
        blocks back to the pool (``start_position`` advances exactly as
        in the contiguous cache; no rows are shifted).  Atomic: an
        out-of-range ``n`` raises before any state changes."""
        if not 0 <= n <= self.length:
            raise ValueError(
                f"cannot evict {n} of {self.length} cached tokens"
            )
        if n == 0:
            return
        bs = self.block_size
        self.table.first_offset += n
        self.length -= n
        self.start_position += n
        self.evictions += n
        self.pool.live_tokens -= n
        while self.table.first_offset >= bs and self.table.blocks:
            self.pool.free(self.table.blocks.pop(0))
            self.table.first_offset -= bs
        if self.length == 0:
            # nothing live: release the (dead-slot-only) tail block too
            for block in self.table.blocks:
                self.pool.free(block)
            self.table.blocks.clear()
            self.table.first_offset = 0

    def truncate(self, n: int) -> None:
        """Drop the ``n`` *newest* cached tokens (speculative rollback).

        The tail-side complement of :meth:`evict`: rejected draft
        tokens are rolled back by truncating the live span and freeing
        whole tail blocks — through the same :meth:`BlockPool.free`
        path window eviction uses, so ``blocks_freed`` / ``live_tokens``
        accounting cannot drift between the two.  ``start_position``
        (the head side) is untouched; an append after a truncate writes
        over the rolled-back slots exactly as the contiguous cache does.
        Atomic: an out-of-range ``n`` raises before any state changes.
        """
        if not 0 <= n <= self.length:
            raise ValueError(
                f"cannot truncate {n} of {self.length} cached tokens"
            )
        if n == 0:
            return
        bs = self.block_size
        self.length -= n
        self.pool.live_tokens -= n
        if self.length == 0:
            # nothing live: release every block (as evict-to-empty does)
            for block in self.table.blocks:
                self.pool.free(block)
            self.table.blocks.clear()
            self.table.first_offset = 0
            return
        keep = blocks_needed(self.table.first_offset + self.length, bs)
        while self.table.n_blocks > keep:
            self.pool.free(self.table.blocks.pop())

    def reset(self) -> None:
        """Empty the cache and return every block to the pool."""
        for block in self.table.blocks:
            self.pool.free(block)
        self.table.blocks.clear()
        self.table.first_offset = 0
        self.pool.live_tokens -= self.length
        self.length = 0
        self.start_position = 0
        self.evictions = 0

    def __repr__(self) -> str:
        return (
            f"PagedKVCache({self.n_heads} heads x {self.capacity} x "
            f"{self.head_dim}, length={self.length}, "
            f"blocks={self.table.n_blocks} x {self.block_size}"
            + (f", window={self.window}" if self.window is not None else "")
            + ")"
        )
