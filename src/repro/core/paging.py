"""Paged KV cache: a global block pool plus per-request block tables.

PR 3's decode memory model was "one contiguous page per request, sized
for the worst case": admission reserved ``max_seq_len`` slots up front,
so short requests stranded memory and heterogeneous batches could not
share the pool.  This module replaces that with the vLLM-style layout
the ROADMAP names:

* :class:`BlockPool` — owns **all** KV storage as fixed-size blocks of
  ``block_size`` token slots (``NovaConfig.kv_block_size`` sets the
  default).  Blocks are allocated and freed by id; the pool never
  reallocates, so an append is always a row write into a live block.
* :class:`BlockTable` — one per request: the ordered list of physical
  block ids holding the request's logical token positions, plus the
  offset of the first live token inside the first block (sliding-window
  eviction advances the offset and frees whole head blocks).
* :class:`PagedKVCache` — presents the exact
  :class:`~repro.core.decode.KVCache` API (``append`` / ``evict`` /
  ``truncate`` / ``keys`` / ``values`` / ``values_snapshot`` /
  ``reset``) on top of the block-table indirection, so the decode
  engines run unchanged on either cache.  ``truncate`` is the
  speculative-decode rollback path: rejected draft tokens free whole
  tail blocks back to the pool.

Prefix caching
--------------
Blocks are reference counted, so block tables of different requests may
point at the **same** physical block.  A cached K/V row is a pure
function of the prompt rows and the key/value projections — never of
``wq``/``wo`` — so requests sharing a prompt prefix hold bit-identical
storage in their leading full blocks.  :func:`prefix_block_keys` turns
that into content keys (one chained digest per full prompt block); the
pool keeps a key → block index (:meth:`BlockPool.register_prefix` /
:meth:`BlockPool.lookup_prefix` / :meth:`BlockPool.probe_prefix`), and
:meth:`PagedKVCache.adopt_prefix` lets a fresh cache take shared
references on the longest cached run before prefill.  Adopted slots
skip the storage write on append (the rows are already there,
bit-identical by key construction) while every cycle/counter stays
exactly what uncached prefill produces.  The first write into a block
someone else references copies it first (:meth:`PagedKVCache.fork`
creates whole copy-on-write twins), so sharing is never observable in
the numerics — only in pool residency.

Numerics contract
-----------------
Paging changes **where** K/V rows live, never their values: ``keys`` /
``values`` / ``values_snapshot`` gather the live span into a fresh
contiguous array holding bit-identical floats in the same order a
contiguous :class:`~repro.core.decode.KVCache` would present, so every
downstream GEMV (scores, context) is bit-exact between the two layouts.
The equivalence gate in ``tests/test_paging.py`` pins this per Table II
preset, and the golden traces prove the cycle/counter accounting is
untouched.

Accounting
----------
The pool tracks cumulative ``blocks_allocated`` / ``blocks_freed``,
current ``in_use`` / ``free``, ``peak_in_use`` and the fragmentation
metric (allocated-but-unused token slots: block slots held by live
caches that no cached token occupies).  Sharing adds ``blocks_shared``
/ ``shared_frees`` (references taken and dropped without moving a
physical block), ``cow_copies``, and the prefix-index counters
(``prefix_hits`` / ``prefix_misses`` / ``prefix_index_size``).
``live_tokens`` stays *logical* — an adopted slot counts for every
cache presenting it — so under sharing ``fragmentation_slots`` can go
negative: that deficit **is** the deduplication win (tokens served
minus slots resident).  :meth:`BlockPool.pool_info` reports them all,
:func:`pool_cache_info` aggregates across every live pool in the
process (surfaced through
:meth:`repro.core.session.NovaSession.cache_info`), and the invariants
``n_blocks == in_use + free`` and
``blocks_allocated - blocks_freed == in_use`` are pinned by the suite.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from collections.abc import Callable, Sequence

import numpy as np

__all__ = [
    "BlockPool",
    "BlockPoolExhausted",
    "BlockTable",
    "PagedKVCache",
    "blocks_needed",
    "prefix_block_keys",
    "worst_case_blocks",
    "pool_cache_info",
]


class BlockPoolExhausted(RuntimeError):
    """Allocating from a :class:`BlockPool` with no free blocks."""


#: Every live pool in the process, for :func:`pool_cache_info`.
_LIVE_POOLS: "weakref.WeakSet[BlockPool]" = weakref.WeakSet()
_POOLS_LOCK = threading.Lock()
_POOLS_CREATED = 0


def blocks_needed(tokens: int, block_size: int) -> int:
    """Blocks required to hold ``tokens`` consecutive token slots."""
    return -(-tokens // block_size)


def worst_case_blocks(
    total_tokens: int, window: int | None, block_size: int
) -> int:
    """Most blocks one request can hold at once over its lifetime.

    Windowless requests keep every appended token.  Windowed requests
    keep at most ``window`` tokens, which can straddle one extra block
    while the head offset walks through the first block — but never
    more than the unwindowed bound.
    """
    if window is None or total_tokens <= window:
        return blocks_needed(total_tokens, block_size)
    return min(
        blocks_needed(window, block_size) + 1,
        blocks_needed(total_tokens, block_size),
    )


def prefix_block_keys(
    x: np.ndarray,
    wk: np.ndarray,
    wv: np.ndarray,
    n_heads: int,
    block_size: int,
) -> tuple[bytes, ...]:
    """Content keys of a prompt's full KV blocks, for prefix sharing.

    A cached K/V row is ``x @ wk`` / ``x @ wv`` split into ``n_heads``
    heads — ``wq`` and ``wo`` shape queries and outputs, never cached
    rows — so two requests agreeing on the projections and their first
    ``i * block_size`` prompt rows hold bit-identical storage in their
    first ``i`` blocks.  Key ``i`` chains the digest of block ``i``'s
    prompt rows onto key ``i - 1`` (seeded with the geometry and the
    projection bytes), so equal keys certify equal *whole prefixes*,
    not merely equal blocks.  Only full blocks get keys: a partial tail
    block also receives divergent suffix and generated rows and is
    never shareable.
    """
    if n_heads < 1:
        raise ValueError(f"n_heads must be >= 1, got {n_heads}")
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    x64 = np.ascontiguousarray(np.asarray(x, dtype=np.float64))
    wk64 = np.ascontiguousarray(np.asarray(wk, dtype=np.float64))
    wv64 = np.ascontiguousarray(np.asarray(wv, dtype=np.float64))
    seed = hashlib.sha256()
    # The hidden width (not the prompt length!) is part of the seed so
    # a longer request sharing the same leading rows produces the same
    # leading keys.
    seed.update(
        repr(
            (n_heads, block_size, x64.shape[1:], wk64.shape, wv64.shape)
        ).encode()
    )
    seed.update(wk64.tobytes())
    seed.update(wv64.tobytes())
    digest = seed.digest()
    keys: list[bytes] = []
    for i in range(x64.shape[0] // block_size):
        chained = hashlib.sha256(digest)
        chained.update(x64[i * block_size : (i + 1) * block_size].tobytes())
        digest = chained.digest()
        keys.append(digest)
    return tuple(keys)


class BlockPool:
    """All KV storage for one geometry, as fixed-size blocks.

    Storage is two preallocated ``(n_blocks, n_heads, block_size,
    head_dim)`` float64 arrays (keys and values); a block id indexes the
    leading axis.  :meth:`allocate` pops a free id (raising
    :class:`BlockPoolExhausted` when the pool is dry — the caller's
    deferral/preemption policy decides what happens next), :meth:`free`
    returns it (double-free raises ``ValueError``).

    Blocks carry a reference count: :meth:`allocate` hands out count 1,
    :meth:`share` takes one more reference on a live block, and
    :meth:`free` only returns the block physically once the last
    reference drops (earlier frees just decrement).  The prefix index
    (:meth:`register_prefix` / :meth:`lookup_prefix` /
    :meth:`probe_prefix` / :meth:`forget_prefix`) maps content keys to
    live blocks so later requests can find and share an already-filled
    prefix block; an entry disappears with the physical free of its
    block or on the first write that changes the block's content.

    ``live_tokens`` is maintained by the :class:`PagedKVCache` instances
    drawing from the pool; ``fragmentation_slots`` — the paged analogue
    of the contiguous layout's stranded worst-case pages — is the gap
    between the slots held (``in_use * block_size``) and the tokens
    logically cached (negative under sharing: the dedup win).
    """

    def __init__(
        self, n_heads: int, head_dim: int, block_size: int, n_blocks: int
    ) -> None:
        if n_heads < 1:
            raise ValueError(f"n_heads must be >= 1, got {n_heads}")
        if head_dim < 1:
            raise ValueError(f"head_dim must be >= 1, got {head_dim}")
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        if n_blocks < 1:
            raise ValueError(f"n_blocks must be >= 1, got {n_blocks}")
        self.n_heads = n_heads
        self.head_dim = head_dim
        self.block_size = block_size
        self.n_blocks = n_blocks
        self._k = np.zeros((n_blocks, n_heads, block_size, head_dim))
        self._v = np.zeros((n_blocks, n_heads, block_size, head_dim))
        self._free: list[int] = list(range(n_blocks - 1, -1, -1))
        self._live = np.zeros(n_blocks, dtype=bool)
        self._refcount: list[int] = [0] * n_blocks
        self._prefix_index: dict[bytes, int] = {}
        self._block_keys: dict[int, bytes] = {}
        self.blocks_allocated = 0
        self.blocks_freed = 0
        self.blocks_shared = 0
        self.shared_frees = 0
        self.cow_copies = 0
        self.prefix_hits = 0
        self.prefix_misses = 0
        self.peak_in_use = 0
        self.live_tokens = 0
        global _POOLS_CREATED
        with _POOLS_LOCK:
            _POOLS_CREATED += 1
            _LIVE_POOLS.add(self)

    # -- geometry -------------------------------------------------------

    @property
    def block_bytes(self) -> int:
        """Bytes one block occupies (keys plus values, float64)."""
        return 2 * 8 * self.n_heads * self.block_size * self.head_dim

    @classmethod
    def from_bytes(
        cls, n_heads: int, head_dim: int, block_size: int, pool_bytes: int
    ) -> "BlockPool":
        """The largest pool fitting a byte budget (>= 1 block required)."""
        block_bytes = 2 * 8 * n_heads * block_size * head_dim
        n_blocks = pool_bytes // block_bytes
        if n_blocks < 1:
            raise ValueError(
                f"pool_bytes ({pool_bytes}) smaller than one "
                f"{block_size}-token block ({block_bytes} bytes)"
            )
        return cls(n_heads, head_dim, block_size, n_blocks)

    # -- allocation -----------------------------------------------------

    @property
    def free_blocks(self) -> int:
        """Blocks available for allocation right now."""
        return len(self._free)

    @property
    def in_use(self) -> int:
        """Blocks currently held by block tables."""
        return self.n_blocks - len(self._free)

    def allocate(self) -> int:
        """Pop a free block id; raises :class:`BlockPoolExhausted` dry."""
        if not self._free:
            raise BlockPoolExhausted(
                f"block pool dry: all {self.n_blocks} blocks of "
                f"{self.block_size} tokens are in use (defer the request "
                "or preempt a sequence to free blocks)"
            )
        block = self._free.pop()
        self._live[block] = True
        self._refcount[block] = 1
        self.blocks_allocated += 1
        self.peak_in_use = max(self.peak_in_use, self.in_use)
        return block

    def share(self, block: int) -> int:
        """Take one more reference on a live block (prefix sharing).

        The physical block stays where it is; a later :meth:`free`
        through any holder just drops the reference until the last one
        returns the block for real.  Sharing a freed block raises
        ``ValueError``.
        """
        if not 0 <= block < self.n_blocks:
            raise ValueError(
                f"block id {block} outside pool of {self.n_blocks} blocks"
            )
        if not self._live[block]:
            raise ValueError(
                f"cannot share freed block {block}: only live blocks can "
                "gain references"
            )
        self._refcount[block] += 1
        self.blocks_shared += 1
        return block

    def refcount(self, block: int) -> int:
        """Current references on a block (0 for a free block)."""
        if not 0 <= block < self.n_blocks:
            raise ValueError(
                f"block id {block} outside pool of {self.n_blocks} blocks"
            )
        return self._refcount[block]

    def free(self, block: int) -> None:
        """Drop one reference; the last one returns the block physically.

        Freeing an already-free block raises ``ValueError`` (the
        classic double free); a shared block just decrements and counts
        a ``shared_free``.  The physical free also retires the block's
        prefix-index entry, so the index never points at free storage.
        """
        if not 0 <= block < self.n_blocks:
            raise ValueError(
                f"block id {block} outside pool of {self.n_blocks} blocks"
            )
        if not self._live[block]:
            raise ValueError(
                f"double free of block {block}: it is already in the free "
                "list"
            )
        if self._refcount[block] > 1:
            self._refcount[block] -= 1
            self.shared_frees += 1
            return
        self.forget_prefix(block)
        self._refcount[block] = 0
        self._live[block] = False
        self._free.append(block)
        self.blocks_freed += 1

    # -- prefix index ---------------------------------------------------

    def register_prefix(self, key: bytes, block: int) -> None:
        """Publish a live block as the holder of a prefix content key.

        First registration wins: a key already in the index (another
        request filled the same prefix block first) and a block already
        published under some key are both left untouched — the index is
        an accelerator, never an obligation.
        """
        if not 0 <= block < self.n_blocks or not self._live[block]:
            raise ValueError(
                f"cannot register a prefix on non-live block {block}"
            )
        if key in self._prefix_index or block in self._block_keys:
            return
        self._prefix_index[key] = block
        self._block_keys[block] = key

    def forget_prefix(self, block: int) -> None:
        """Retire the index entry published for a block, if any.

        Called on physical free and before the first content-changing
        write into a registered block; a no-op for unpublished blocks.
        """
        key = self._block_keys.pop(block, None)
        if key is not None:
            del self._prefix_index[key]

    def lookup_prefix(self, key: bytes) -> int | None:
        """The live block published under ``key``, counting hit/miss.

        The adoption-path lookup: every call moves ``prefix_hits`` or
        ``prefix_misses``.  Side-effect-free callers (admission
        estimates) should use :meth:`probe_prefix` instead.
        """
        block = self._prefix_index.get(key)
        if block is None:
            self.prefix_misses += 1
        else:
            self.prefix_hits += 1
        return block

    def probe_prefix(self, keys: Sequence[bytes]) -> int:
        """How many *leading* keys are cached right now (read-only).

        No counters move and no references are taken — this is the
        scheduler's admission estimate of what
        :meth:`PagedKVCache.adopt_prefix` would adopt.
        """
        count = 0
        for key in keys:
            if key not in self._prefix_index:
                break
            count += 1
        return count

    # -- storage views --------------------------------------------------

    def keys_of(self, block: int) -> np.ndarray:
        """Key storage of one live block, ``(n_heads, block_size, head_dim)``."""
        return self._k[block]

    def values_of(self, block: int) -> np.ndarray:
        """Value storage of one live block, same shape as :meth:`keys_of`."""
        return self._v[block]

    # -- accounting -----------------------------------------------------

    @property
    def fragmentation_slots(self) -> int:
        """Allocated-but-unused token slots across all live block tables.

        Negative under prefix sharing: more tokens are logically served
        than slots are resident, and the deficit is the dedup win.
        """
        return self.in_use * self.block_size - self.live_tokens

    @property
    def shared_block_refs(self) -> int:
        """Extra references held on live blocks beyond their first.

        Zero without sharing; each adopted prefix block or forked block
        contributes its reference count minus one.
        """
        return sum(c - 1 for c in self._refcount if c > 1)

    @property
    def prefix_index_size(self) -> int:
        """Content keys currently published in the prefix index."""
        return len(self._prefix_index)

    def pool_info(self) -> dict[str, int]:
        """Every accounting counter, as one plain dict.

        Invariants (pinned by the suite): ``n_blocks == in_use + free``
        and ``blocks_allocated - blocks_freed == in_use`` — sharing
        never disturbs them, because :meth:`share` / shared
        :meth:`free` move only the reference count.
        """
        return {
            "block_size": self.block_size,
            "block_bytes": self.block_bytes,
            "n_blocks": self.n_blocks,
            "in_use": self.in_use,
            "free": self.free_blocks,
            "blocks_allocated": self.blocks_allocated,
            "blocks_freed": self.blocks_freed,
            "blocks_shared": self.blocks_shared,
            "shared_frees": self.shared_frees,
            "cow_copies": self.cow_copies,
            "prefix_hits": self.prefix_hits,
            "prefix_misses": self.prefix_misses,
            "prefix_index_size": self.prefix_index_size,
            "shared_block_refs": self.shared_block_refs,
            "peak_in_use": self.peak_in_use,
            "live_tokens": self.live_tokens,
            "fragmentation_slots": self.fragmentation_slots,
        }

    def __repr__(self) -> str:
        return (
            f"BlockPool({self.n_blocks} x {self.block_size} tokens, "
            f"{self.n_heads} heads x {self.head_dim}, "
            f"{self.in_use} in use)"
        )


def pool_cache_info() -> dict[str, int]:
    """Process-wide block-pool statistics (every live pool aggregated).

    The paging analogue of
    :func:`repro.approx.table_cache.table_cache_info`, surfaced through
    :meth:`repro.core.session.NovaSession.cache_info`.
    """
    with _POOLS_LOCK:
        pools = list(_LIVE_POOLS)
    return {
        "pools_created": _POOLS_CREATED,
        "live_pools": len(pools),
        "n_blocks": sum(p.n_blocks for p in pools),
        "in_use": sum(p.in_use for p in pools),
        "free": sum(p.free_blocks for p in pools),
        # Cumulative totals.  Every free path — window eviction
        # (:meth:`PagedKVCache.evict`), speculative rollback
        # (:meth:`PagedKVCache.truncate`) and page recycling
        # (:meth:`PagedKVCache.reset`) — goes through
        # :meth:`BlockPool.free`, so ``blocks_freed`` counts them
        # identically (the suite pins ``blocks_allocated - blocks_freed
        # == in_use`` across all three).
        "blocks_allocated": sum(p.blocks_allocated for p in pools),
        "blocks_freed": sum(p.blocks_freed for p in pools),
        "blocks_shared": sum(p.blocks_shared for p in pools),
        "shared_frees": sum(p.shared_frees for p in pools),
        "cow_copies": sum(p.cow_copies for p in pools),
        "prefix_hits": sum(p.prefix_hits for p in pools),
        "prefix_misses": sum(p.prefix_misses for p in pools),
        "prefix_index_size": sum(p.prefix_index_size for p in pools),
        "shared_block_refs": sum(p.shared_block_refs for p in pools),
        "peak_in_use": sum(p.peak_in_use for p in pools),
        "live_tokens": sum(p.live_tokens for p in pools),
        "fragmentation_slots": sum(p.fragmentation_slots for p in pools),
    }


class BlockTable:
    """Logical-to-physical mapping of one request's cached tokens.

    ``blocks[i]`` is the physical block holding logical slots
    ``[i * block_size, (i + 1) * block_size)`` of the table's own slot
    space; ``first_offset`` is the slot index of the oldest live token
    (sliding-window eviction advances it instead of shifting rows).
    """

    __slots__ = ("blocks", "first_offset")

    def __init__(self) -> None:
        self.blocks: list[int] = []
        self.first_offset = 0

    @property
    def n_blocks(self) -> int:
        """Physical blocks currently mapped."""
        return len(self.blocks)

    def physical(self, slot: int, block_size: int) -> tuple[int, int]:
        """``(block_id, offset)`` of one absolute table slot."""
        return self.blocks[slot // block_size], slot % block_size

    def __repr__(self) -> str:
        return (
            f"BlockTable({self.n_blocks} blocks, "
            f"first_offset={self.first_offset})"
        )


class PagedKVCache:
    """The :class:`~repro.core.decode.KVCache` API over a block table.

    Drop-in for the contiguous cache: same constructor-equivalent fields
    (``n_heads`` / ``head_dim`` come from the pool), same ``append`` /
    ``evict`` / ``reset`` semantics, same ``keys`` / ``values`` /
    ``values_snapshot`` shapes and values.  The differences are all on
    the memory side:

    * storage is borrowed from the shared :class:`BlockPool`, one block
      at a time, **lazily on append** — an idle request holds zero
      blocks, a short request holds ``ceil(tokens / block_size)``, never
      a worst-case page;
    * a full pool makes ``append`` raise
      :class:`BlockPoolExhausted` *before any state changes*, so the
      scheduler can defer the token and retry the same step later;
    * sliding-window eviction advances ``first_offset`` and frees whole
      head blocks back to the pool instead of shifting arrays;
    * ``reset`` frees every block (page recycling is the pool itself);
    * blocks may be *shared* with other tables: :meth:`adopt_prefix`
      takes references on already-cached prompt blocks before prefill
      (appends below ``prefix_len`` then skip the redundant storage
      write), :meth:`fork` twins the whole table, and the first write
      into any block someone else still references copies it first
      (copy-on-write), so sharing never changes a single gathered row.
    """

    def __init__(
        self,
        pool: BlockPool,
        capacity: int,
        window: int | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if window is not None:
            if window < 1:
                raise ValueError(f"window must be >= 1, got {window}")
            if window > capacity:
                raise ValueError(
                    f"window ({window}) cannot exceed capacity ({capacity})"
                )
        self.pool = pool
        self.capacity = capacity
        self.window = window
        self.table = BlockTable()
        self.length = 0
        self.start_position = 0
        self.evictions = 0
        #: Slots below this index are adopted shared-prefix slots: the
        #: block already holds their exact rows, so ``append`` skips
        #: the storage write.
        self.prefix_len = 0
        #: Content keys of prompt blocks this cache is still filling,
        #: by block ordinal — published to the pool's prefix index as
        #: each block completes.
        self._pending_keys: dict[int, bytes] = {}

    # -- KVCache-compatible geometry -----------------------------------

    @property
    def n_heads(self) -> int:
        """Per-token head count (the pool's)."""
        return self.pool.n_heads

    @property
    def head_dim(self) -> int:
        """Per-head width (the pool's)."""
        return self.pool.head_dim

    @property
    def block_size(self) -> int:
        """Tokens per block (the pool's)."""
        return self.pool.block_size

    @property
    def limit(self) -> int:
        """Maximum entries held at once (``window`` if set, else capacity)."""
        return self.capacity if self.window is None else self.window

    @property
    def blocks_in_use(self) -> int:
        """Physical blocks this cache currently holds."""
        return self.table.n_blocks

    @property
    def fragmentation_slots(self) -> int:
        """Slots this cache holds that no live token occupies."""
        return self.table.n_blocks * self.block_size - self.length

    def can_serve(self, n_heads: int, head_dim: int, capacity: int) -> bool:
        """Whether this cache can hold a request of the given geometry."""
        return (
            self.n_heads == n_heads
            and self.head_dim == head_dim
            and self.capacity >= capacity
        )

    # -- gathered views -------------------------------------------------

    def _gather(
        self, storage_of: Callable[[int], np.ndarray], kv_len: int
    ) -> np.ndarray:
        """First ``kv_len`` live rows as one fresh contiguous array."""
        out = np.empty((self.n_heads, kv_len, self.head_dim))
        bs = self.block_size
        start = self.table.first_offset
        stop = start + kv_len
        for i, block in enumerate(self.table.blocks):
            lo = max(start, i * bs)
            hi = min(stop, (i + 1) * bs)
            if lo >= hi:
                continue
            out[:, lo - start : hi - start] = storage_of(block)[
                :, lo - i * bs : hi - i * bs
            ]
        return out

    @property
    def keys(self) -> np.ndarray:
        """The live cached keys, ``(n_heads, length, head_dim)``
        (gathered copy — bit-identical to the contiguous layout's view)."""
        return self._gather(self.pool.keys_of, self.length)

    @property
    def values(self) -> np.ndarray:
        """The live cached values, ``(n_heads, length, head_dim)``."""
        return self._gather(self.pool.values_of, self.length)

    def values_snapshot(self, kv_len: int) -> np.ndarray:
        """Contiguous copy of the first ``kv_len`` live values (the
        decode engines' deferred-snapshot hook; see
        ``KVCache.values_snapshot``)."""
        return self._gather(self.pool.values_of, kv_len)

    # -- prefix sharing -------------------------------------------------

    def adopt_prefix(self, keys: Sequence[bytes]) -> int:
        """Adopt the longest cached run of prompt blocks before prefill.

        ``keys`` are the prompt's :func:`prefix_block_keys`.  Leading
        keys found in the pool's index are taken as shared references
        (no storage moves, no rows copied) and ``prefix_len`` rises to
        cover their slots; the remaining keys are remembered so the
        blocks this request's prefill fills get published for the next
        request.  Returns the adopted token count.

        Prefill then still computes and appends every prompt row — the
        cycle and counter accounting of an uncached prefill, exactly —
        but appends below ``prefix_len`` skip the storage write: the
        adopted block already holds bit-identical rows, by key
        construction.  Only a fresh, windowless cache can adopt
        (a sliding window evicts the prefix the keys certify).
        """
        if self.length != 0 or self.table.n_blocks != 0:
            raise ValueError(
                "adopt_prefix needs a fresh cache: nothing appended, no "
                "blocks held"
            )
        if self.window is not None:
            raise ValueError(
                "adopt_prefix does not apply to windowed caches (the "
                "sliding window evicts the certified prefix)"
            )
        bs = self.block_size
        self._pending_keys.clear()
        adopted = 0
        for i, key in enumerate(keys):
            block = self.pool.lookup_prefix(key)
            if block is None:
                for j in range(i, len(keys)):
                    self._pending_keys[j] = keys[j]
                break
            self.pool.share(block)
            self.table.blocks.append(block)
            adopted += bs
        self.prefix_len = adopted
        return adopted

    def fork(self) -> "PagedKVCache":
        """A copy-on-write twin sharing every block of this cache.

        The twin presents the same live span (same ``length`` /
        ``start_position`` / eviction history) through references to
        the *same* physical blocks; the first append either side makes
        into a still-shared block copies it first, so neither twin ever
        observes the other's writes.  The twin adopts nothing
        (``prefix_len`` 0): every one of its writes goes through the
        copy-on-write check.
        """
        twin = PagedKVCache(self.pool, self.capacity, window=self.window)
        for block in self.table.blocks:
            self.pool.share(block)
            twin.table.blocks.append(block)
        twin.table.first_offset = self.table.first_offset
        twin.length = self.length
        twin.start_position = self.start_position
        twin.evictions = self.evictions
        self.pool.live_tokens += self.length
        return twin

    def _copy_on_write(self, index: int) -> int:
        """Replace a shared block with a private copy before a write.

        The allocation comes first, so a dry pool raises
        :class:`BlockPoolExhausted` with the table untouched (the
        enclosing append stays atomic); the shared original only loses
        this table's reference.
        """
        old = self.table.blocks[index]
        new = self.pool.allocate()
        self.pool.keys_of(new)[...] = self.pool.keys_of(old)
        self.pool.values_of(new)[...] = self.pool.values_of(old)
        self.table.blocks[index] = new
        self.pool.free(old)
        self.pool.cow_copies += 1
        return new

    # -- mutation -------------------------------------------------------

    def append(self, k_t: np.ndarray, v_t: np.ndarray) -> None:
        """Append one token's per-head key/value rows.

        Identical contract to ``KVCache.append`` plus the pool
        dimension: a new block is allocated lazily when the tail slot
        crosses a block boundary, and :class:`BlockPoolExhausted`
        propagates *before any cache state changes* (no partial evict,
        no length change) — the append is atomic — so a scheduler can
        treat it as "defer this token and retry after blocks free up".

        Sharing adds three refinements, none visible to the engines:
        a slot below ``prefix_len`` (an adopted prompt slot) skips the
        storage write but still counts in ``length`` / ``live_tokens``;
        a write targeting a block other tables still reference copies
        it first (:meth:`_copy_on_write`); and filling the last slot of
        a block whose content key is pending publishes the block in the
        pool's prefix index.
        """
        from repro.core.decode import KVCacheOverflow

        expected = (self.n_heads, self.head_dim)
        k_t = np.asarray(k_t, dtype=np.float64)
        v_t = np.asarray(v_t, dtype=np.float64)
        if k_t.shape != expected or v_t.shape != expected:
            raise ValueError(
                f"expected per-token k/v of shape {expected}, got "
                f"{k_t.shape} / {v_t.shape}"
            )
        bs = self.block_size
        if self.length == self.limit:
            if self.window is None:
                raise KVCacheOverflow(
                    f"KV cache full at capacity {self.capacity} "
                    f"(position {self.start_position + self.length}); "
                    "set a window for sliding eviction or raise "
                    "max_seq_len"
                )
            # Atomicity pre-check, sharing-aware: eviction only frees a
            # *physical* block when this table holds its last reference
            # (a shared free just decrements), and the evicting append
            # needs an allocation when the tail sits on the block grid,
            # when eviction empties the table, or when the target block
            # is shared (copy-on-write).  Check the pool before
            # mutating so exhaustion leaves the cache untouched.
            tail = self.table.first_offset + self.length
            needs_block = tail == self.table.n_blocks * bs
            if self.length == 1:
                freed = sum(
                    1
                    for b in self.table.blocks
                    if self.pool.refcount(b) == 1
                )
                need_alloc = True  # the emptied table re-fills slot 0
            elif needs_block:
                head = self.table.blocks[0]
                freed = (
                    1
                    if (
                        self.table.first_offset + 1 == bs
                        and self.pool.refcount(head) == 1
                    )
                    else 0
                )
                need_alloc = True
            else:
                head = self.table.blocks[0]
                freed = (
                    1
                    if (
                        self.table.first_offset + 1 == bs
                        and self.pool.refcount(head) == 1
                    )
                    else 0
                )
                need_alloc = (
                    self.pool.refcount(self.table.blocks[tail // bs]) > 1
                )
            if need_alloc and self.pool.free_blocks + freed < 1:
                raise BlockPoolExhausted(
                    f"block pool dry: windowed append needs a block but "
                    f"all {self.pool.n_blocks} blocks are in use"
                )
            self.evict(1)
        slot = self.table.first_offset + self.length
        if slot < self.prefix_len:
            # Adopted prompt slot: the shared block already holds these
            # exact rows (equal content keys), so only the logical
            # accounting moves — bit-for-bit what an uncached append
            # would have stored.
            self.length += 1
            self.pool.live_tokens += 1
            return
        if slot == self.table.n_blocks * bs:
            self.table.blocks.append(self.pool.allocate())
        block, offset = self.table.physical(slot, bs)
        if self.pool.refcount(block) > 1:
            block = self._copy_on_write(slot // bs)
        self.pool.forget_prefix(block)
        self.pool.keys_of(block)[:, offset] = k_t
        self.pool.values_of(block)[:, offset] = v_t
        self.length += 1
        self.pool.live_tokens += 1
        if self._pending_keys and (slot + 1) % bs == 0:
            key = self._pending_keys.pop(slot // bs, None)
            if key is not None:
                self.pool.register_prefix(key, block)

    def evict(self, n: int) -> None:
        """Drop the ``n`` oldest cached tokens, freeing whole head
        blocks back to the pool (``start_position`` advances exactly as
        in the contiguous cache; no rows are shifted).  A shared head
        block only loses this table's reference.  Atomic: an
        out-of-range ``n`` raises before any state changes."""
        if not 0 <= n <= self.length:
            raise ValueError(
                f"cannot evict {n} of {self.length} cached tokens"
            )
        if n == 0:
            return
        bs = self.block_size
        self.table.first_offset += n
        self.length -= n
        self.start_position += n
        self.evictions += n
        self.pool.live_tokens -= n
        while self.table.first_offset >= bs and self.table.blocks:
            self.pool.free(self.table.blocks.pop(0))
            self.table.first_offset -= bs
            self.prefix_len = max(0, self.prefix_len - bs)
        if self.length == 0:
            # nothing live: release the (dead-slot-only) tail block too
            for block in self.table.blocks:
                self.pool.free(block)
            self.table.blocks.clear()
            self.table.first_offset = 0
            self.prefix_len = 0
        # Eviction moves the slot grid under the pending ordinals;
        # publishing is best-effort, so drop them rather than remap.
        self._pending_keys.clear()

    def truncate(self, n: int) -> None:
        """Drop the ``n`` *newest* cached tokens (speculative rollback).

        The tail-side complement of :meth:`evict`: rejected draft
        tokens are rolled back by truncating the live span and freeing
        whole tail blocks — through the same :meth:`BlockPool.free`
        path window eviction uses, so ``blocks_freed`` / ``live_tokens``
        accounting cannot drift between the two.  A shared tail block
        only loses this table's reference (the other holder keeps its
        rows).  ``start_position`` (the head side) is untouched; an
        append after a truncate writes over the rolled-back slots
        exactly as the contiguous cache does — copying first if the
        target block is still shared, and retiring the block's
        published prefix key since its content diverges.  Atomic: an
        out-of-range ``n`` raises before any state changes.
        """
        if not 0 <= n <= self.length:
            raise ValueError(
                f"cannot truncate {n} of {self.length} cached tokens"
            )
        if n == 0:
            return
        bs = self.block_size
        self.length -= n
        self.pool.live_tokens -= n
        self._pending_keys.clear()
        if self.length == 0:
            # nothing live: release every block (as evict-to-empty does)
            for block in self.table.blocks:
                self.pool.free(block)
            self.table.blocks.clear()
            self.table.first_offset = 0
            self.prefix_len = 0
            return
        keep = blocks_needed(self.table.first_offset + self.length, bs)
        while self.table.n_blocks > keep:
            self.pool.free(self.table.blocks.pop())
        self.prefix_len = min(
            self.prefix_len, self.table.first_offset + self.length
        )

    def reset(self) -> None:
        """Empty the cache and return every block (reference) to the pool."""
        for block in self.table.blocks:
            self.pool.free(block)
        self.table.blocks.clear()
        self.table.first_offset = 0
        self.pool.live_tokens -= self.length
        self.length = 0
        self.start_position = 0
        self.evictions = 0
        self.prefix_len = 0
        self._pending_keys.clear()

    def __repr__(self) -> str:
        return (
            f"PagedKVCache({self.n_heads} heads x {self.capacity} x "
            f"{self.head_dim}, length={self.length}, "
            f"blocks={self.table.n_blocks} x {self.block_size}"
            + (f", window={self.window}" if self.window is not None else "")
            + ")"
        )
