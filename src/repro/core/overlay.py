"""Overlay adapters: attaching NOVA to third-party accelerators (Fig. 5).

NOVA is not a standalone accelerator — it is an overlay.  Each adapter
models one of the paper's three integrations:

* **REACT** (§III-B.1): the Weighted-Sum (WS) router is altered into a
  6x2 input crossbar that steers a PE output either around NOVA (bypass)
  or into the comparators; captured results re-enter through a 2x6 output
  crossbar.  The crossbars are extra hardware the cost model charges to
  the NOVA-on-REACT configuration.
* **TPU-like systolic arrays** (§III-B.2): each 128x128 MXU's output edge
  feeds a comparator bank directly; one NOVA router per MXU.
* **NVDLA** (§III-B.3): each convolution core (16 output neurons) feeds
  one NOVA router, replacing the LUT-based SDP's activation path.

Functionally every adapter does the same thing — reshape the host
accelerator's output stream into ``(n_routers, neurons_per_router)``
batches, push them through the :class:`~repro.core.vector_unit.
NovaVectorUnit`, and restore the host layout — plus, for REACT, the
bypass steering.  What differs is the attachment metadata the hardware
cost model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.vector_unit import NovaVectorUnit, StreamResult

__all__ = [
    "OverlayAttachment",
    "AcceleratorOverlay",
    "ReactOverlay",
    "SystolicOverlay",
    "NvdlaOverlay",
]


@dataclass(frozen=True)
class CrossbarSpec:
    """A crossbar added by an overlay (inputs x outputs, per router)."""

    in_ports: int
    out_ports: int
    width_bits: int

    def __post_init__(self) -> None:
        if min(self.in_ports, self.out_ports, self.width_bits) < 1:
            raise ValueError("crossbar dimensions must all be >= 1")


@dataclass(frozen=True)
class OverlayAttachment:
    """What an overlay adds to the host, for the hardware cost model."""

    host: str
    n_routers: int
    neurons_per_router: int
    crossbars_per_router: tuple[CrossbarSpec, ...] = ()
    notes: str = ""


@dataclass
class AcceleratorOverlay:
    """Base adapter: host-layout stream -> NOVA -> host-layout stream."""

    unit: NovaVectorUnit
    host_name: str = "generic"
    _bypass_count: int = field(default=0, repr=False)

    def attachment(self) -> OverlayAttachment:
        """Attachment metadata (subclasses add crossbars/notes)."""
        return OverlayAttachment(
            host=self.host_name,
            n_routers=self.unit.n_routers,
            neurons_per_router=self.unit.neurons_per_router,
        )

    def process(self, outputs: np.ndarray) -> StreamResult:
        """Push host core outputs through NOVA.

        ``outputs`` has shape ``(n_batches, n_routers, neurons_per_router)``
        — one batch per host PE cycle.  A 2-D input is treated as a single
        batch.
        """
        outputs = np.asarray(outputs, dtype=np.float64)
        if outputs.ndim == 2:
            outputs = outputs[None]
        if outputs.ndim != 3:
            raise ValueError(
                "expected (n_batches, n_routers, neurons) or (n_routers, "
                f"neurons), got shape {outputs.shape}"
            )
        return self.unit.run_stream(outputs)


@dataclass
class ReactOverlay(AcceleratorOverlay):
    """NOVA on REACT's WS NoC, with bypass steering (Fig. 5a).

    The altered WS router is a 6x2 input crossbar: one output bypasses
    NOVA (tensor data that needs no non-linear op), the other feeds the
    comparators.  ``process_with_bypass`` models that steering: values
    flagged for bypass pass through unchanged and consume no approximator
    events.
    """

    host_name: str = "REACT"

    def attachment(self) -> OverlayAttachment:
        return OverlayAttachment(
            host=self.host_name,
            n_routers=self.unit.n_routers,
            neurons_per_router=self.unit.neurons_per_router,
            crossbars_per_router=(
                CrossbarSpec(in_ports=6, out_ports=2, width_bits=16),
                CrossbarSpec(in_ports=2, out_ports=6, width_bits=16),
            ),
            notes="WS router altered to 6x2 input / 2x6 output crossbars",
        )

    def process_with_bypass(
        self, outputs: np.ndarray, bypass_mask: np.ndarray
    ) -> np.ndarray:
        """One batch with per-neuron bypass.

        ``bypass_mask`` is boolean with the same shape as ``outputs``
        (n_routers, neurons); True entries skip the approximator (the
        crossbar's bypass output) and appear unchanged in the result.
        """
        outputs = np.asarray(outputs, dtype=np.float64)
        bypass_mask = np.asarray(bypass_mask, dtype=bool)
        if bypass_mask.shape != outputs.shape:
            raise ValueError(
                f"bypass_mask shape {bypass_mask.shape} must match outputs "
                f"shape {outputs.shape}"
            )
        approximated = self.unit.approximate(outputs).outputs
        self._bypass_count += int(np.count_nonzero(bypass_mask))
        return np.where(bypass_mask, outputs, approximated)

    @property
    def bypassed_values(self) -> int:
        """Total values steered around NOVA so far."""
        return self._bypass_count


@dataclass
class SystolicOverlay(AcceleratorOverlay):
    """NOVA at the output edge of TPU-like MXUs (Fig. 5b).

    One router per MXU; the MXU drains one ``systolic_cols``-wide row of
    results per cycle, which is exactly one comparator-bank batch.
    """

    host_name: str = "TPU"
    systolic_cols: int = 128

    def attachment(self) -> OverlayAttachment:
        return OverlayAttachment(
            host=self.host_name,
            n_routers=self.unit.n_routers,
            neurons_per_router=self.unit.neurons_per_router,
            notes=f"attached at the {self.systolic_cols}-wide MXU output edge",
        )

    def process_mxu_drain(self, result_matrix: np.ndarray) -> StreamResult:
        """Approximate a full MXU result matrix, one row per cycle.

        ``result_matrix`` has shape ``(n_rows, n_routers, systolic_cols)``:
        each MXU drains row ``t`` of its output tile in cycle ``t``.
        """
        result_matrix = np.asarray(result_matrix, dtype=np.float64)
        if result_matrix.ndim != 3 or result_matrix.shape[2] != self.systolic_cols:
            raise ValueError(
                f"expected (n_rows, n_routers, {self.systolic_cols}), got "
                f"{result_matrix.shape}"
            )
        return self.process(result_matrix)


@dataclass
class NvdlaOverlay(AcceleratorOverlay):
    """NOVA on NVDLA convolution cores, replacing the SDP path (Fig. 5c)."""

    host_name: str = "NVDLA"

    def attachment(self) -> OverlayAttachment:
        return OverlayAttachment(
            host=self.host_name,
            n_routers=self.unit.n_routers,
            neurons_per_router=self.unit.neurons_per_router,
            notes="replaces the Single Data Processor (SDP) activation path",
        )
