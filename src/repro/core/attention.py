"""Attention layers on the NOVA overlay — the paper's title, end to end.

:class:`NovaAttentionEngine` executes a complete multi-head self-attention
layer where **every non-linear operation runs through the cycle-accurate
NOVA hardware model**: the softmax's exponential, the normaliser's
reciprocal (with power-of-two range reduction) and, for a full encoder
block, the FFN's GeLU.  The host's tensor ops (the GEMMs) run as plain
numpy — they belong to the MXUs/cores, not the vector unit.

The engine demonstrates the three things the paper asserts but never
shows together:

1. the same physical overlay serves all of a layer's non-linear functions
   via the mapper's table switching (free on NOVA — tables live on the
   wires, see :mod:`repro.core.table_scheduler`),
2. attention outputs stay numerically faithful to the exact layer,
3. the vector-unit cycle count per layer is exactly the op graph's query
   count divided by the lane count (one query per lane per PE cycle).

Serving model
-------------
This engine is the *cycle-accurate reference*: every non-linear query is
driven beat-by-beat through the NoC simulation, one request at a time.
Production-style serving lives in
:class:`repro.core.batched_attention.BatchedNovaAttentionEngine`, which
packs many requests through one shared overlay and is validated
bit-exact and cycle-exact against this engine.

The recommended entry point to both engines (and to raw vector-unit
access) is :class:`repro.core.session.NovaSession`, driven by a typed
:class:`repro.core.config.NovaConfig` geometry — construct engines
directly only when you need to hold the engine object itself.  The two
engines share compile-time state rather than rebuilding it:

* **table cache** — PWL tables come from the process-wide
  :mod:`repro.approx.table_cache`, keyed on
  ``(function, n_segments, seed)``; constructing N engines trains each
  table once, not N times, and every engine with the same key holds the
  *same* table object (so cross-engine output comparisons are exact by
  construction);
* **schedule cache** — :class:`repro.core.mapper.NovaMapper` shares one
  frozen ``BroadcastSchedule`` per ``(n_routers, freq, n_pairs, hop_mm)``
  geometry across all units in the process.

Per-call results report only the events of that call: the engine
snapshots its units' lifetime counters around each layer, so invoking
:meth:`NovaAttentionEngine.attention_layer` repeatedly yields counters
that sum to the lifetime totals instead of double-counting earlier calls.
The same discipline holds across the whole engine family — the batched
engine's per-request closed-form counters and the decode engine's
per-step counters (:mod:`repro.core.decode`) sum to their unit's
lifetime totals, and compile-time work is never re-counted: tables are
compiled once at construction through the process-wide cache, so a
decode loop of any length adds zero table-cache misses (pinned by
``tests/test_decode.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.approx.quantize import QuantizedPwl
from repro.approx.table_cache import compiled_table
from repro.core.config import NovaConfig, resolve_engine_config
from repro.core.table_scheduler import TableScheduler
from repro.core.vector_unit import NovaVectorUnit
from repro.noc.stats import EventCounters

__all__ = ["NovaAttentionEngine", "AttentionLayerResult"]

#: The non-linear functions an encoder layer schedules onto the overlay.
ATTENTION_FUNCTIONS = ("exp", "reciprocal", "gelu")


@dataclass(frozen=True)
class AttentionLayerResult:
    """Output of one attention layer on the overlay."""

    outputs: np.ndarray           # (seq, hidden)
    probabilities: np.ndarray     # (heads, seq, seq)
    vector_cycles: int            # PE cycles the vector unit was busy
    nonlinear_queries: int
    counters: EventCounters


# ----------------------------------------------------------------------
# Host-side numerics shared by the sequential and batched engines.
#
# These are the numerically sensitive steps between the hardware calls;
# both engines MUST use these exact helpers — the batched engine's
# bit-exactness contract against this engine holds by construction only
# because there is a single copy of each step.
# ----------------------------------------------------------------------


def pack_lane_stream(
    flat: np.ndarray, shape: tuple[int, int]
) -> tuple[np.ndarray, int]:
    """Pack a flat query stream into whole lane batches, zero-padding
    the tail.

    ``shape`` is the lane grid ``(n_routers, n_neurons)``; returns
    ``(batches, n_batches)`` with ``batches`` shaped
    ``(n_batches, n_routers, n_neurons)``.  The pad value (0.0) is part
    of the accounting contract: padded lanes look up the table's
    zero-address, which the serving engine's per-request closed form
    reproduces.
    """
    lanes = shape[0] * shape[1]
    n_batches = -(-len(flat) // lanes)
    padded = np.zeros(n_batches * lanes)
    padded[: len(flat)] = flat
    return padded.reshape(n_batches, *shape), n_batches


def host_attention_scores(
    x: np.ndarray,
    wq: np.ndarray,
    wk: np.ndarray,
    wv: np.ndarray,
    n_heads: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Projections and scaled attention scores (the host's GEMMs).

    Returns ``(scores, v)`` with ``scores`` of shape
    ``(heads, seq, seq)`` and ``v`` of shape ``(heads, seq, head_dim)``.
    """
    seq, hidden = x.shape
    head_dim = hidden // n_heads

    def split(m: np.ndarray) -> np.ndarray:
        return m.reshape(seq, n_heads, head_dim).transpose(1, 0, 2)

    q, k, v = split(x @ wq), split(x @ wk), split(x @ wv)
    scores = q @ k.transpose(0, 2, 1) / np.sqrt(head_dim)
    return scores, v


def shift_scores(scores: np.ndarray) -> np.ndarray:
    """Max-subtraction for numerical stability (host row max)."""
    return scores - scores.max(axis=-1, keepdims=True)


def softmax_reduction(
    raw_numer: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Post-exp host stage: clamp, row sums, power-of-two reduction.

    Returns ``(numer, mantissa, exponent)``: the clamped numerators, the
    normalised mantissas in ``[1, 2)`` to feed the reciprocal table, and
    the exponents to undo afterwards.
    """
    numer = np.maximum(raw_numer, 0.0)
    denom = numer.sum(axis=-1, keepdims=True)
    denom = np.where(denom <= 0, 1.0, denom)
    mantissa, exponent = np.frexp(denom)
    return numer, mantissa * 2.0, exponent - 1


def assemble_probabilities(
    numer: np.ndarray, inv: np.ndarray, exponent: np.ndarray
) -> np.ndarray:
    """Scale numerators by the hardware reciprocal and renormalise.

    The final renormalisation is the host's output scale stage; it keeps
    rows summing to one exactly despite residual reciprocal error.
    """
    probs = numer * inv * np.ldexp(1.0, -exponent)
    return probs / probs.sum(axis=-1, keepdims=True)


def finish_attention_layer(
    probs: np.ndarray, v: np.ndarray, wo: np.ndarray
) -> np.ndarray:
    """Context GEMM, head merge and output projection."""
    heads, seq, head_dim = v.shape
    context = probs @ v
    merged = context.transpose(1, 0, 2).reshape(seq, heads * head_dim)
    return merged @ wo


class NovaAttentionEngine:
    """One NOVA overlay executing attention non-linearities.

    The primary constructor interface is a
    :class:`~repro.core.config.NovaConfig` (or a Table II preset name
    such as ``"jetson-nx"``)::

        NovaAttentionEngine(NovaConfig(n_routers=2, neurons_per_router=16))
        NovaAttentionEngine("tpu-v4")

    Legacy loose geometry kwargs still build the identical engine but
    emit a ``DeprecationWarning``.  Tables for exp / reciprocal / gelu
    are compiled once at construction (the paper's compile-time MLP
    flow, via the process-wide table cache) and broadcast on demand.
    """

    def __init__(
        self,
        config: NovaConfig | str | None = None,
        *,
        n_routers: int | None = None,
        neurons_per_router: int | None = None,
        pe_frequency_ghz: float | None = None,
        hop_mm: float | None = None,
        n_segments: int | None = None,
        seed: int | None = None,
    ) -> None:
        self.config = resolve_engine_config(
            config,
            dict(
                n_routers=n_routers,
                neurons_per_router=neurons_per_router,
                pe_frequency_ghz=pe_frequency_ghz,
                hop_mm=hop_mm,
                n_segments=n_segments,
                seed=seed,
            ),
            owner="NovaAttentionEngine",
        )
        cfg = self.config
        self.tables = {
            name: compiled_table(name, n_segments=cfg.n_segments, seed=cfg.seed)
            for name in ATTENTION_FUNCTIONS
        }
        # one physical unit per function table (same geometry — in
        # hardware it is literally the same unit fed different beats;
        # separate instances keep per-function event counters apart)
        self.units = {
            name: NovaVectorUnit(table, cfg)
            for name, table in self.tables.items()
        }
        self.n_lanes = cfg.n_lanes
        self.scheduler = TableScheduler(
            self.tables, n_lanes=self.n_lanes, unit_kind="nova"
        )
        self._shape = cfg.lane_shape

    # ------------------------------------------------------------------
    # Elementwise ops through the hardware (batched over the lane grid).
    # ------------------------------------------------------------------

    def _elementwise(self, function: str, values: np.ndarray) -> tuple[np.ndarray, int]:
        """Run a flat value stream through the unit, padding the tail.

        Returns (results, vector_cycles).
        """
        unit = self.units[function]
        flat = np.asarray(values, dtype=np.float64).reshape(-1)
        batches, n_batches = pack_lane_stream(flat, self._shape)
        # simulate=True: this engine is the cycle-accurate reference the
        # batched serving engine is validated against, so its queries go
        # through the beat-level NoC model rather than the vectorised path.
        stream = unit.run_stream(batches, simulate=True)
        out = stream.outputs.reshape(-1)[: len(flat)]
        return out.reshape(np.asarray(values).shape), n_batches

    def softmax(self, scores: np.ndarray) -> tuple[np.ndarray, int]:
        """Hardware softmax over the last axis.

        exp runs on the overlay; the row max/sum reductions belong to the
        host's accumulators; 1/sum runs on the overlay through the
        reciprocal table with power-of-two range reduction.
        """
        scores = np.asarray(scores, dtype=np.float64)
        shifted = shift_scores(scores)
        raw_numer, exp_cycles = self._elementwise("exp", shifted)
        numer, mantissa, exponent = softmax_reduction(raw_numer)
        inv, recip_cycles = self._elementwise("reciprocal", mantissa)
        probs = assemble_probabilities(numer, inv, exponent)
        return probs, exp_cycles + recip_cycles

    def gelu(self, values: np.ndarray) -> tuple[np.ndarray, int]:
        """Hardware GeLU (FFN activation)."""
        return self._elementwise("gelu", values)

    # ------------------------------------------------------------------
    # Full attention layer.
    # ------------------------------------------------------------------

    def attention_layer(
        self,
        x: np.ndarray,
        wq: np.ndarray,
        wk: np.ndarray,
        wv: np.ndarray,
        wo: np.ndarray,
        n_heads: int,
    ) -> AttentionLayerResult:
        """Multi-head self-attention with hardware non-linearities.

        ``x`` is ``(seq, hidden)``; the four weight matrices are
        ``(hidden, hidden)``.
        """
        x = np.asarray(x, dtype=np.float64)
        seq, hidden = x.shape
        if hidden % n_heads != 0:
            raise ValueError(
                f"hidden ({hidden}) must divide by n_heads ({n_heads})"
            )
        # Snapshot every unit's lifetime counters so the result carries
        # exactly this layer's events; merging raw lifetime counters would
        # re-count every earlier call on the same engine.
        before = {
            name: unit._lifetime_counters() for name, unit in self.units.items()
        }
        scores, v = host_attention_scores(x, wq, wk, wv, n_heads)
        probs, vector_cycles = self.softmax(scores)
        outputs = finish_attention_layer(probs, v, wo)

        counters = EventCounters()
        for name, unit in self.units.items():
            counters = counters.merge(
                unit._lifetime_counters().diff(before[name])
            )
        return AttentionLayerResult(
            outputs=outputs,
            probabilities=probs,
            vector_cycles=vector_cycles,
            nonlinear_queries=int(n_heads * seq * seq + np.prod(probs.shape[:-1])),
            counters=counters,
        )

    def exact_attention_layer(
        self,
        x: np.ndarray,
        wq: np.ndarray,
        wk: np.ndarray,
        wv: np.ndarray,
        wo: np.ndarray,
        n_heads: int,
    ) -> np.ndarray:
        """The float reference of :meth:`attention_layer`."""
        from repro.approx.softmax import exact_softmax

        x = np.asarray(x, dtype=np.float64)
        seq, hidden = x.shape
        head_dim = hidden // n_heads

        def split(m: np.ndarray) -> np.ndarray:
            return m.reshape(seq, n_heads, head_dim).transpose(1, 0, 2)

        q, k, v = split(x @ wq), split(x @ wk), split(x @ wv)
        scores = q @ k.transpose(0, 2, 1) / np.sqrt(head_dim)
        probs = exact_softmax(scores, axis=-1)
        context = probs @ v
        return context.transpose(1, 0, 2).reshape(seq, hidden) @ wo
