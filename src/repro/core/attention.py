"""Attention layers on the NOVA overlay — the paper's title, end to end.

:class:`NovaAttentionEngine` executes a complete multi-head self-attention
layer where **every non-linear operation runs through the cycle-accurate
NOVA hardware model**: the softmax's exponential, the normaliser's
reciprocal (with power-of-two range reduction) and, for a full encoder
block, the FFN's GeLU.  The host's tensor ops (the GEMMs) run as plain
numpy — they belong to the MXUs/cores, not the vector unit.

The engine demonstrates the three things the paper asserts but never
shows together:

1. the same physical overlay serves all of a layer's non-linear functions
   via the mapper's table switching (free on NOVA — tables live on the
   wires, see :mod:`repro.core.table_scheduler`),
2. attention outputs stay numerically faithful to the exact layer,
3. the vector-unit cycle count per layer is exactly the op graph's query
   count divided by the lane count (one query per lane per PE cycle).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.approx.functions import get_function
from repro.approx.nnlut_mlp import train_nnlut_mlp
from repro.approx.quantize import QuantizedPwl
from repro.core.table_scheduler import TableScheduler
from repro.core.vector_unit import NovaVectorUnit
from repro.noc.stats import EventCounters

__all__ = ["NovaAttentionEngine", "AttentionLayerResult"]


@dataclass(frozen=True)
class AttentionLayerResult:
    """Output of one attention layer on the overlay."""

    outputs: np.ndarray           # (seq, hidden)
    probabilities: np.ndarray     # (heads, seq, seq)
    vector_cycles: int            # PE cycles the vector unit was busy
    nonlinear_queries: int
    counters: EventCounters


def _build_table(function: str, n_segments: int, seed: int) -> QuantizedPwl:
    spec = get_function(function)
    mlp = train_nnlut_mlp(spec, n_segments=n_segments, seed=seed)
    return QuantizedPwl(mlp.to_piecewise_linear(n_segments=n_segments))


class NovaAttentionEngine:
    """One NOVA overlay executing attention non-linearities.

    Parameters mirror the Table II geometries: ``n_routers`` cores with
    ``neurons_per_router`` lanes each.  Tables for exp / reciprocal /
    gelu are compiled once at construction (the paper's compile-time MLP
    flow) and broadcast on demand.
    """

    def __init__(
        self,
        n_routers: int = 8,
        neurons_per_router: int = 128,
        pe_frequency_ghz: float = 1.4,
        hop_mm: float = 0.5,
        n_segments: int = 16,
        seed: int = 0,
    ) -> None:
        self.tables = {
            name: _build_table(name, n_segments, seed)
            for name in ("exp", "reciprocal", "gelu")
        }
        # one physical unit per function table (same geometry — in
        # hardware it is literally the same unit fed different beats;
        # separate instances keep per-function event counters apart)
        self.units = {
            name: NovaVectorUnit(
                table,
                n_routers=n_routers,
                neurons_per_router=neurons_per_router,
                pe_frequency_ghz=pe_frequency_ghz,
                hop_mm=hop_mm,
            )
            for name, table in self.tables.items()
        }
        self.n_lanes = n_routers * neurons_per_router
        self.scheduler = TableScheduler(
            self.tables, n_lanes=self.n_lanes, unit_kind="nova"
        )
        self._shape = (n_routers, neurons_per_router)

    # ------------------------------------------------------------------
    # Elementwise ops through the hardware (batched over the lane grid).
    # ------------------------------------------------------------------

    def _elementwise(self, function: str, values: np.ndarray) -> tuple[np.ndarray, int]:
        """Run a flat value stream through the unit, padding the tail.

        Returns (results, vector_cycles).
        """
        unit = self.units[function]
        flat = np.asarray(values, dtype=np.float64).reshape(-1)
        lanes = self.n_lanes
        n_batches = -(-len(flat) // lanes)
        padded = np.zeros(n_batches * lanes)
        padded[: len(flat)] = flat
        batches = padded.reshape(n_batches, *self._shape)
        stream = unit.run_stream(batches)
        out = stream.outputs.reshape(-1)[: len(flat)]
        return out.reshape(np.asarray(values).shape), n_batches

    def softmax(self, scores: np.ndarray) -> tuple[np.ndarray, int]:
        """Hardware softmax over the last axis.

        exp runs on the overlay; the row max/sum reductions belong to the
        host's accumulators; 1/sum runs on the overlay through the
        reciprocal table with power-of-two range reduction.
        """
        scores = np.asarray(scores, dtype=np.float64)
        shifted = scores - scores.max(axis=-1, keepdims=True)
        numer, exp_cycles = self._elementwise("exp", shifted)
        numer = np.maximum(numer, 0.0)
        denom = numer.sum(axis=-1, keepdims=True)
        denom = np.where(denom <= 0, 1.0, denom)
        mantissa, exponent = np.frexp(denom)
        mantissa = mantissa * 2.0
        exponent = exponent - 1
        inv, recip_cycles = self._elementwise("reciprocal", mantissa)
        probs = numer * inv * np.ldexp(1.0, -exponent)
        # renormalise residual reciprocal error (the host's output scale
        # stage); keeps rows summing to one exactly
        probs = probs / probs.sum(axis=-1, keepdims=True)
        return probs, exp_cycles + recip_cycles

    def gelu(self, values: np.ndarray) -> tuple[np.ndarray, int]:
        """Hardware GeLU (FFN activation)."""
        return self._elementwise("gelu", values)

    # ------------------------------------------------------------------
    # Full attention layer.
    # ------------------------------------------------------------------

    def attention_layer(
        self,
        x: np.ndarray,
        wq: np.ndarray,
        wk: np.ndarray,
        wv: np.ndarray,
        wo: np.ndarray,
        n_heads: int,
    ) -> AttentionLayerResult:
        """Multi-head self-attention with hardware non-linearities.

        ``x`` is ``(seq, hidden)``; the four weight matrices are
        ``(hidden, hidden)``.
        """
        x = np.asarray(x, dtype=np.float64)
        seq, hidden = x.shape
        if hidden % n_heads != 0:
            raise ValueError(
                f"hidden ({hidden}) must divide by n_heads ({n_heads})"
            )
        head_dim = hidden // n_heads

        def split(m: np.ndarray) -> np.ndarray:
            return m.reshape(seq, n_heads, head_dim).transpose(1, 0, 2)

        q, k, v = split(x @ wq), split(x @ wk), split(x @ wv)
        scores = q @ k.transpose(0, 2, 1) / np.sqrt(head_dim)
        probs, vector_cycles = self.softmax(scores)
        context = probs @ v
        merged = context.transpose(1, 0, 2).reshape(seq, hidden)
        outputs = merged @ wo

        counters = EventCounters()
        for unit in self.units.values():
            counters = counters.merge(unit._lifetime_counters())
        return AttentionLayerResult(
            outputs=outputs,
            probabilities=probs,
            vector_cycles=vector_cycles,
            nonlinear_queries=int(n_heads * seq * seq + np.prod(probs.shape[:-1])),
            counters=counters,
        )

    def exact_attention_layer(
        self,
        x: np.ndarray,
        wq: np.ndarray,
        wk: np.ndarray,
        wv: np.ndarray,
        wo: np.ndarray,
        n_heads: int,
    ) -> np.ndarray:
        """The float reference of :meth:`attention_layer`."""
        from repro.approx.softmax import exact_softmax

        x = np.asarray(x, dtype=np.float64)
        seq, hidden = x.shape
        head_dim = hidden // n_heads

        def split(m: np.ndarray) -> np.ndarray:
            return m.reshape(seq, n_heads, head_dim).transpose(1, 0, 2)

        q, k, v = split(x @ wq), split(x @ wk), split(x @ wv)
        scores = q @ k.transpose(0, 2, 1) / np.sqrt(head_dim)
        probs = exact_softmax(scores, axis=-1)
        context = probs @ v
        return context.transpose(1, 0, 2).reshape(seq, hidden) @ wo
