"""Speculative decode on the NOVA overlay: draft-and-verify over paged KV.

Every output token of the plain decode path costs one full pass through
the overlay — one exp stream, one reciprocal stream, one table retarget
each — even though a single decode row rarely fills the lane grid.
Speculative decode amortises that per-step overhead the same way the
prefill path amortises a whole prompt: a cheap **draft model** proposes
the next ``k`` token embeddings, the engine appends them to the KV cache
as *provisional* tokens, and one **packed verification pass** scores all
``k + 1`` positions in a single overlay traversal (the fold-small-ops-
into-one-pass idea the ROADMAP names).  Accepted drafts commit; the
rejected suffix rolls back atomically by truncating the cache — on a
:class:`~repro.core.paging.PagedKVCache` that frees whole tail blocks
back to the shared pool.

Why this is bit-exact by construction
-------------------------------------
The decode loop is deterministic: the next token's embedding *is* the
attention output at the last position.  A verification pass feeds the
chain ``u_0 = x_t, u_1 = d_1, ..., u_k = d_k`` (``d_i`` drafted) through
the exact per-token numerics of :class:`~repro.core.decode.
NovaDecodeEngine` and obtains the true outputs ``o_0 ... o_k``.  Draft
``d_i`` is **accepted only when it equals ``o_{i-1}`` bit for bit** — in
which case position ``i``'s input was exactly what plain decode would
have fed, so ``o_i`` is exactly what plain decode would have produced.
The first mismatch truncates: positions past it attended to a wrong
input, so their cache rows and outputs are discarded.  Committed outputs
are therefore *always* the plain-decode outputs, for **any** draft model
— a bad draft costs cycles (rolled-back work), never correctness.  The
property suite pins this under arbitrary accept/reject programs
(:class:`ScheduledDraft`), and ``u_0`` guarantees at least one committed
token per pass.

Draft models
------------
:class:`TruncatedTableDraft` re-runs the per-token host numerics through
the *same compiled LUT objects* the engine holds (``QuantizedPwl.
evaluate`` is the golden model the hardware is bit-exact against), so at
``fidelity=1.0`` every proposal verifies bit-identically with zero
overlay cost.  ``fidelity < 1.0`` drafts a seeded, per-position fraction
of tokens through the same LUTs at *reduced output precision* instead —
those proposals disagree and are rejected, making ``fidelity`` the
long-run acceptance-rate knob the serving studies sweep (the simulator
stand-in for draft-model quality).  :class:`NGramDraft` is the
model-free alternative: it replays the output last seen after a
matching (reduced-precision-keyed) input, which starts paying off once
a self-fed trajectory revisits states.  :class:`ScheduledDraft` follows
an explicit accept/reject program — the test and golden-trace
instrument.

Tree speculation
----------------
A linear chain stops paying at the first miss: one wrong draft wastes
the whole suffix.  A :class:`DraftTree` (``spec_tree="2x2,1x4"`` style
specs, :func:`repro.core.config.parse_tree_spec`) proposes several
*alternative* drafts per depth instead and scores the whole tree in the
same single packed pass.  Every tree node appends as a provisional
token under its own branch cache — an only child extends its parent's
branch in place, siblings each get a ``fork()`` of the parent cache (on
the paged layer a copy-on-write :class:`~repro.core.paging.BlockTable`
fork: shared prefixes stay at refcount, not copy) — so each node's
gathered KV span is exactly its ancestor chain.  That *is* the
tree-causal attention mask, realised structurally rather than
arithmetically (:func:`tree_causal_mask` materialises it); one
whole-batch ``table_gather_mac`` launch per phase scores every branch
at once.  The commit step walks the tree accepting, per depth, the
child drafted bit-identical to its parent's true output, keeps that
longest-accepted branch, and rolls every other branch back through the
existing truncate/release path — zero leaked pool blocks for any
accept pattern (a pinned property).  A width-1 tree plans no forks at
all and degenerates to exactly the linear ``spec_k`` chain, which pins
backward compatibility bit-for-bit.

Accounting
----------
Each verification pass is charged what the overlay actually spends (the
packed closed form over *all* pass tokens, rolled-back ones included);
:class:`SpeculativeGenerateResult` additionally reports the closed-form
**sequential-equivalent** cycles — exactly what plain ``generate`` would
have charged for the same committed tokens (a pinned invariant) — plus
drafted / accepted / rolled-back token counts per pass and in total.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

import numpy as np

from repro.core.attention import (
    assemble_probabilities,
    shift_scores,
    softmax_reduction,
)
from repro.core.config import (
    DRAFT_KINDS,
    NovaConfig,
    as_config,
    parse_tree_spec,
)
from repro.core.decode import (
    CausalPrefillResult,
    DecodeRequest,
    DecodeState,
    KVCacheOverflow,
    NovaDecodeEngine,
    _Job,
    context_for_query,
    project_token,
    scores_for_query,
)
from repro.noc.stats import EventCounters

if TYPE_CHECKING:
    from repro.approx.quantize import QuantizedPwl
    from repro.core.decode import KVCacheLike, _JobResult, _TokenPlan
    from repro.core.paging import BlockPool
    from repro.core.vector_unit import NovaVectorUnit

__all__ = [
    "DraftModel",
    "DraftTree",
    "NGramDraft",
    "TruncatedTableDraft",
    "ScheduledDraft",
    "build_draft",
    "host_step_output",
    "tree_causal_mask",
    "SpeculativeStepResult",
    "VerifyPassResult",
    "SpeculativeGenerateResult",
    "SpeculativeDecodeEngine",
]


# ----------------------------------------------------------------------
# The exact per-token step on the host (the draft models' substrate).
# ----------------------------------------------------------------------


def host_step_output(
    request: DecodeRequest,
    cache: KVCacheLike,
    x_t: np.ndarray,
    exp_table: QuantizedPwl,
    recip_table: QuantizedPwl,
    drop_to_bits: int | None = None,
) -> np.ndarray:
    """One decode step's attention output, computed entirely on the host.

    ``cache`` must already hold ``x_t``'s k/v row (the engine appends
    before asking for a proposal).  With the engine's own compiled
    tables and ``drop_to_bits=None`` this reproduces the verification
    pass **bit for bit**: the helpers are the single shared copies the
    engine executes (:func:`~repro.core.decode.project_token`,
    :func:`~repro.core.attention.softmax_reduction`, ...) and
    ``QuantizedPwl.evaluate`` is the golden model the overlay is
    bit-exact against.  ``drop_to_bits=b`` rounds both non-linear
    results to ``b`` fraction bits — the same LUTs at reduced
    precision, which is how :class:`TruncatedTableDraft` models a
    lower-fidelity draft.
    """
    x_t = np.asarray(x_t, dtype=np.float64).reshape(-1)
    q, _, _ = project_token(
        x_t, request.wq, request.wk, request.wv, request.n_heads
    )
    scores = scores_for_query(q, cache.keys)
    raw = exp_table.evaluate(shift_scores(scores))
    if drop_to_bits is not None:
        raw = np.ldexp(np.round(np.ldexp(raw, drop_to_bits)), -drop_to_bits)
    numer, mantissa, exponent = softmax_reduction(raw)
    inv = recip_table.evaluate(mantissa)
    if drop_to_bits is not None:
        inv = np.ldexp(np.round(np.ldexp(inv, drop_to_bits)), -drop_to_bits)
    probs = assemble_probabilities(numer, inv, exponent)
    context = context_for_query(probs, cache.values_snapshot(cache.length))
    return context @ request.wo


# ----------------------------------------------------------------------
# Draft trees.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DraftTree:
    """The branching plan of one tree-speculative verification pass.

    ``widths[i]`` is how many alternative drafts every surviving branch
    proposes at depth ``i + 1`` (the root ``u_0`` is depth 0 and always
    a single true token).  ``DraftTree.linear(k)`` — all widths 1 — is
    the degenerate tree: it plans the exact linear ``spec_k`` chain,
    fork-free.  Identical sibling proposals are deduplicated at plan
    time, so a draft that cannot produce ``widths[i]`` distinct
    alternatives simply grows a narrower level — the tree is a budget,
    not a quota.
    """

    widths: tuple[int, ...]

    def __post_init__(self) -> None:
        widths = tuple(int(w) for w in self.widths)
        object.__setattr__(self, "widths", widths)
        if not widths:
            raise ValueError("a draft tree needs at least one level")
        if any(w < 1 for w in widths):
            raise ValueError(
                f"draft-tree widths must be >= 1, got {widths}"
            )
        # Reuse the spec parser's node cap (it validates the same sum).
        parse_tree_spec(self.spec)

    @classmethod
    def parse(cls, spec: str) -> DraftTree:
        """Build from a ``"2x2,1x4"``-style spec string
        (:func:`repro.core.config.parse_tree_spec`)."""
        return cls(parse_tree_spec(spec))

    @classmethod
    def linear(cls, k: int) -> DraftTree:
        """The degenerate width-1 tree: a linear chain of ``k`` drafts."""
        if k < 1:
            raise ValueError(f"a linear chain needs k >= 1, got {k}")
        return cls((1,) * k)

    @property
    def depth(self) -> int:
        """Draft levels planned below the root."""
        return len(self.widths)

    @property
    def max_nodes(self) -> int:
        """Draft nodes a full (no-dedup, no-limit) tree would plan."""
        nodes = 0
        level = 1
        for width in self.widths:
            level *= width
            nodes += level
        return nodes

    @property
    def is_linear(self) -> bool:
        """Whether this is the degenerate (fork-free) chain."""
        return all(w == 1 for w in self.widths)

    @property
    def spec(self) -> str:
        """The canonical ``WIDTHxCOUNT`` spec string (run-length form)."""
        segments: list[str] = []
        for width in self.widths:
            prior = segments[-1] if segments else None
            if prior is not None and prior.startswith(f"{width}x"):
                count = int(prior.split("x")[1]) + 1
                segments[-1] = f"{width}x{count}"
            else:
                segments.append(f"{width}x1")
        return ",".join(segments)

    def __str__(self) -> str:
        return self.spec

    def __repr__(self) -> str:
        return f"DraftTree({self.spec!r})"


# ----------------------------------------------------------------------
# Draft models.
# ----------------------------------------------------------------------


@runtime_checkable
class DraftModel(Protocol):
    """What the speculative engine needs from a draft.

    ``propose(request, cache, x_t, position)`` predicts the attention
    output of token ``x_t`` at absolute ``position`` (the cache already
    holds ``x_t``'s k/v row); the prediction becomes the next drafted
    input.  ``observe(x_t, output, position)`` feeds back every
    *committed* (input, true output) pair so stateful drafts can learn
    the trajectory; ``reset()`` clears per-request state.  Proposals
    must be deterministic in ``(cache state, x_t, position)`` — the
    continuous batcher relies on that to stay result-identical to
    one-at-a-time speculative decode.

    Drafts may additionally implement the optional tree extension
    ``propose_candidates(request, cache, x_t, position, width)``
    returning up to ``width`` alternative proposals for one
    :class:`DraftTree` level (the in-tree drafts all do).  It is not
    part of the protocol: a plain linear draft works under any tree —
    wide levels just degrade to its single :meth:`propose` answer.
    """

    def propose(
        self,
        request: DecodeRequest,
        cache: KVCacheLike,
        x_t: np.ndarray,
        position: int,
    ) -> np.ndarray: ...

    def observe(
        self, x_t: np.ndarray, output: np.ndarray, position: int
    ) -> None: ...

    def reset(self) -> None: ...


class TruncatedTableDraft:
    """Draft by re-running the engine's compiled LUTs on the host.

    At ``fidelity=1.0`` (the default) every proposal runs the exact
    per-token numerics through the very table objects the engine
    compiled — bit-identical to the verification output, so every draft
    is accepted: the draft pays host arithmetic, the overlay pays one
    packed pass per ``spec_k + 1`` tokens.  At ``fidelity < 1.0`` a
    seeded per-position coin drafts the complementary fraction through
    the same LUTs truncated to ``reduced_bits`` output fraction bits;
    those proposals miss verification, so ``fidelity`` is the long-run
    acceptance rate of a uniformly-mixed workload — the knob standing
    in for draft-model quality in the serving studies.  The coin is
    keyed on ``(seed, absolute position)``, never on pass boundaries,
    so acceptance decisions are identical no matter how steps are
    grouped into passes or scheduler steps.
    """

    def __init__(
        self,
        config: NovaConfig | str | None = None,
        fidelity: float = 1.0,
        seed: int = 0,
        reduced_bits: int = 4,
    ) -> None:
        if not 0.0 <= fidelity <= 1.0:
            raise ValueError(f"fidelity must be in [0, 1], got {fidelity}")
        if reduced_bits < 0:
            raise ValueError(
                f"reduced_bits must be >= 0, got {reduced_bits}"
            )
        cfg = as_config(config)
        self.fidelity = float(fidelity)
        self.seed = int(seed)
        self.reduced_bits = int(reduced_bits)
        self._exp = cfg.table("exp")
        self._recip = cfg.table("reciprocal")

    def _exact(self, position: int, alternative: int = 0) -> bool:
        if self.fidelity >= 1.0:
            return True
        if self.fidelity <= 0.0:
            return False
        # Alternative 0 keeps the historical (seed, position) key so a
        # width-1 tree draws the exact coins the linear chain always
        # has; siblings flip independent coins.
        key = (
            (self.seed, position)
            if alternative == 0
            else (self.seed, position, alternative)
        )
        coin = np.random.default_rng(key).random()
        return bool(coin < self.fidelity)

    def propose(
        self,
        request: DecodeRequest,
        cache: KVCacheLike,
        x_t: np.ndarray,
        position: int,
    ) -> np.ndarray:
        return host_step_output(
            request, cache, x_t, self._exp, self._recip,
            drop_to_bits=None if self._exact(position) else self.reduced_bits,
        )

    def propose_candidates(
        self,
        request: DecodeRequest,
        cache: KVCacheLike,
        x_t: np.ndarray,
        position: int,
        width: int,
    ) -> list[np.ndarray]:
        """``width`` alternative proposals for one tree level.

        Alternative ``j`` flips its own fidelity coin (independent per
        sibling, still keyed on absolute position only, so acceptance is
        pass-grouping invariant) and, when inexact, truncates to
        ``reduced_bits + j`` fraction bits — distinct wrong siblings
        rather than ``width`` copies of the same miss.  Alternative 0 is
        bit-identical to :meth:`propose`.
        """
        return [
            host_step_output(
                request, cache, x_t, self._exp, self._recip,
                drop_to_bits=(
                    None
                    if self._exact(position, j)
                    else self.reduced_bits + j
                ),
            )
            for j in range(width)
        ]

    def observe(
        self, x_t: np.ndarray, output: np.ndarray, position: int
    ) -> None:
        pass

    def reset(self) -> None:
        pass

    def __repr__(self) -> str:
        return (
            f"TruncatedTableDraft(fidelity={self.fidelity:g}, "
            f"seed={self.seed}, reduced_bits={self.reduced_bits})"
        )


class NGramDraft:
    """Model-free draft: replay the output last seen after this input.

    Committed ``(input, output)`` pairs are memoised under a
    reduced-precision key of the input embedding
    (``round(x * 2**key_bits)``); a proposal is the stored follower of
    the matching key, falling back to persistence (propose ``x_t``
    itself) on a miss.  Deterministic and overlay-free; it starts
    earning acceptances when a self-fed trajectory converges or revisits
    states bit-exactly — otherwise every pass still commits its one
    guaranteed token and the engine degrades gracefully toward plain
    decode (plus the rolled-back draft work).
    """

    def __init__(self, key_bits: int = 10, max_history: int = 65536) -> None:
        if key_bits < 0:
            raise ValueError(f"key_bits must be >= 0, got {key_bits}")
        if max_history < 1:
            raise ValueError(f"max_history must be >= 1, got {max_history}")
        self.key_bits = int(key_bits)
        self.max_history = int(max_history)
        self._history: dict[bytes, np.ndarray] = {}

    def _key(self, x: np.ndarray) -> bytes:
        return (
            np.round(np.ldexp(np.asarray(x, dtype=np.float64), self.key_bits))
            .astype(np.int64)
            .tobytes()
        )

    def propose(
        self,
        request: DecodeRequest,
        cache: KVCacheLike,
        x_t: np.ndarray,
        position: int,
    ) -> np.ndarray:
        hit = self._history.get(self._key(x_t))
        return np.array(x_t if hit is None else hit, dtype=np.float64)

    def propose_candidates(
        self,
        request: DecodeRequest,
        cache: KVCacheLike,
        x_t: np.ndarray,
        position: int,
        width: int,
    ) -> list[np.ndarray]:
        """Up to two alternatives: the learned follower, then persistence.

        An n-gram table has exactly one follower per key, so the only
        extra hedge a tree buys it is proposing ``x_t`` itself alongside
        a history hit (on a miss the two coincide).  Narrower than
        ``width`` is fine — the tree prunes.
        """
        hit = self._history.get(self._key(x_t))
        candidates = [np.array(x_t if hit is None else hit, dtype=np.float64)]
        if hit is not None and width > 1:
            candidates.append(np.array(x_t, dtype=np.float64))
        return candidates

    def observe(
        self, x_t: np.ndarray, output: np.ndarray, position: int
    ) -> None:
        key = self._key(x_t)
        if key not in self._history and len(self._history) >= self.max_history:
            # Evict the single oldest entry (dict insertion order), not
            # the whole history: a full wipe cratered acceptance to zero
            # every time a long generation crossed the max_history
            # boundary.
            del self._history[next(iter(self._history))]
        self._history[key] = np.array(output, dtype=np.float64)

    def reset(self) -> None:
        self._history.clear()

    def __repr__(self) -> str:
        return (
            f"NGramDraft(key_bits={self.key_bits}, "
            f"history={len(self._history)})"
        )


class ScheduledDraft:
    """Follow an explicit accept/reject program (test/golden instrument).

    Entry ``i`` of ``program`` decides draft ``i`` of the run (cycling):
    ``True`` proposes through the exact host numerics (bit-identical —
    accepted at verification), ``False`` through the reduced-precision
    path (rejected).  This turns "arbitrary accept/reject/rollback
    sequences" into data the property suite can draw with hypothesis and
    the golden fixtures can pin per preset.
    """

    def __init__(
        self,
        config: NovaConfig | str | None,
        program: Iterable[object],
        reduced_bits: int = 4,
    ) -> None:
        cfg = as_config(config)
        self.program = tuple(bool(p) for p in program)
        if not self.program:
            raise ValueError("program must contain at least one decision")
        self.reduced_bits = int(reduced_bits)
        self._exp = cfg.table("exp")
        self._recip = cfg.table("reciprocal")
        self._cursor = 0

    def propose(
        self,
        request: DecodeRequest,
        cache: KVCacheLike,
        x_t: np.ndarray,
        position: int,
    ) -> np.ndarray:
        exact = self.program[self._cursor % len(self.program)]
        self._cursor += 1
        return host_step_output(
            request, cache, x_t, self._exp, self._recip,
            drop_to_bits=None if exact else self.reduced_bits,
        )

    def propose_candidates(
        self,
        request: DecodeRequest,
        cache: KVCacheLike,
        x_t: np.ndarray,
        position: int,
        width: int,
    ) -> list[np.ndarray]:
        """``width`` alternatives, each consuming one program decision.

        Trees visit nodes level by level in planning order, so the
        program maps onto tree nodes deterministically — which is what
        lets the golden fixtures pin an exact acceptance trace per
        preset.  Inexact alternatives truncate to ``reduced_bits + j``
        so two ``False`` decisions yield two *distinct* wrong siblings;
        duplicate ``True`` decisions dedup to one accepted child.
        """
        candidates: list[np.ndarray] = []
        for j in range(width):
            exact = self.program[self._cursor % len(self.program)]
            self._cursor += 1
            candidates.append(
                host_step_output(
                    request, cache, x_t, self._exp, self._recip,
                    drop_to_bits=(
                        None if exact else self.reduced_bits + j
                    ),
                )
            )
        return candidates

    def observe(
        self, x_t: np.ndarray, output: np.ndarray, position: int
    ) -> None:
        pass

    def reset(self) -> None:
        self._cursor = 0

    def __repr__(self) -> str:
        bits = "".join("1" if p else "0" for p in self.program)
        return f"ScheduledDraft(program={bits}, cursor={self._cursor})"


def build_draft(
    kind: str,
    config: NovaConfig | str | None = None,
    **kwargs: Any,
) -> DraftModel:
    """Construct one of the named :data:`~repro.core.config.DRAFT_KINDS`.

    ``"truncated-table"`` forwards ``config`` plus any
    :class:`TruncatedTableDraft` kwargs (``fidelity`` / ``seed`` /
    ``reduced_bits``); ``"ngram"`` takes :class:`NGramDraft` kwargs.
    """
    if kind == "truncated-table":
        return TruncatedTableDraft(config, **kwargs)
    if kind == "ngram":
        return NGramDraft(**kwargs)
    raise ValueError(
        f"unknown draft kind {kind!r}; known: {sorted(DRAFT_KINDS)}"
    )


# ----------------------------------------------------------------------
# Results.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SpeculativeStepResult:
    """One *committed* token of a speculative run.

    ``vector_cycles`` / ``nonlinear_queries`` are the closed-form
    sequential equivalent — exactly what a dedicated
    :meth:`~repro.core.decode.NovaDecodeEngine.decode_step` would have
    charged for this token (the overlay's real spend lives on the pass,
    see :class:`VerifyPassResult`).  ``drafted`` marks tokens whose
    *input* came from an accepted draft rather than the previous
    committed output directly.
    """

    output: np.ndarray            # (hidden,)
    probabilities: np.ndarray     # (n_heads, kv_length)
    position: int
    kv_length: int
    drafted: bool
    vector_cycles: int
    nonlinear_queries: int


@dataclass(frozen=True)
class VerifyPassResult:
    """One draft-and-verify round trip through the overlay.

    ``tokens`` positions went through the packed pass (``drafted`` of
    them provisional); ``committed = accepted + 1`` survived (``u_0`` is
    always committed), ``rolled_back`` were truncated from the cache.
    ``vector_cycles`` / ``counters`` are what the overlay actually
    charged for the whole pass, rolled-back work included.
    """

    tokens: int
    drafted: int
    accepted: int
    committed: int
    rolled_back: int
    vector_cycles: int
    nonlinear_queries: int
    counters: EventCounters


@dataclass(frozen=True)
class SpeculativeGenerateResult:
    """Prefill plus speculative draft-and-verify generation.

    ``generated`` is **bit-identical** to plain
    :meth:`~repro.core.decode.NovaDecodeEngine.generate` of the same
    request — for any draft model.  ``vector_cycles`` is the overlay's
    real spend (prefill + every packed verification pass, rolled-back
    work included); ``sequential_vector_cycles`` the closed-form cost
    plain generate would have charged for the same tokens (a pinned
    invariant: it equals the plain run's ``vector_cycles`` exactly), so
    ``cycle_speedup`` isolates the speculation win on the cycle side.
    """

    prefill: CausalPrefillResult
    steps: tuple[SpeculativeStepResult, ...]
    passes: tuple[VerifyPassResult, ...]
    generated: np.ndarray         # (n_generated, hidden)
    vector_cycles: int
    sequential_vector_cycles: int
    counters: EventCounters

    @property
    def n_generated(self) -> int:
        """Tokens generated after the prompt."""
        return len(self.steps)

    @property
    def verify_passes(self) -> int:
        """Verification passes run."""
        return len(self.passes)

    @property
    def drafted_tokens(self) -> int:
        """Draft proposals made across every pass."""
        return sum(p.drafted for p in self.passes)

    @property
    def accepted_tokens(self) -> int:
        """Draft proposals that verified bit-exactly."""
        return sum(p.accepted for p in self.passes)

    @property
    def rolled_back_tokens(self) -> int:
        """Provisional tokens truncated from the cache."""
        return sum(p.rolled_back for p in self.passes)

    @property
    def acceptance_rate(self) -> float:
        """Accepted fraction of drafted tokens (0.0 with no drafts)."""
        drafted = self.drafted_tokens
        return self.accepted_tokens / drafted if drafted else 0.0

    @property
    def tokens_per_pass(self) -> float:
        """Mean committed tokens per verification pass (>= 1)."""
        return self.n_generated / max(1, self.verify_passes)

    @property
    def decode_vector_cycles(self) -> int:
        """Overlay cycles spent in verification passes only."""
        return self.vector_cycles - self.prefill.vector_cycles

    @property
    def cycle_speedup(self) -> float:
        """Sequential-equivalent cycles per actually-charged cycle."""
        if self.vector_cycles == 0:
            return 1.0
        return self.sequential_vector_cycles / self.vector_cycles


def _draft_candidates(
    draft: DraftModel,
    request: DecodeRequest,
    cache: KVCacheLike,
    x_t: np.ndarray,
    position: int,
    width: int,
) -> list[np.ndarray]:
    """One tree level's deduplicated draft proposals for one branch.

    Width-1 levels call :meth:`DraftModel.propose` directly — the exact
    call the linear chain has always made, which is what keeps the
    degenerate tree bit-and-accounting-identical to ``spec_k``
    speculation.  Wider levels use the draft's optional
    ``propose_candidates(request, cache, x_t, position, width)``
    extension when it has one (every in-tree draft does), falling back
    to the single :meth:`~DraftModel.propose` answer otherwise — a
    plain linear draft still works under any tree, it just never fills
    the extra width.  Bit-identical siblings collapse to one child:
    they would verify identically, so planning both buys nothing.
    """
    if width == 1:
        raw = [draft.propose(request, cache, x_t, position)]
    else:
        proposer = getattr(draft, "propose_candidates", None)
        if proposer is None:
            raw = [draft.propose(request, cache, x_t, position)]
        else:
            raw = list(proposer(request, cache, x_t, position, width))[:width]
    candidates: list[np.ndarray] = []
    seen: set[bytes] = set()
    for proposal in raw:
        d = np.asarray(proposal, dtype=np.float64).reshape(-1)
        key = d.tobytes()
        if key not in seen:
            seen.add(key)
            candidates.append(d)
    return candidates


class _TreeNode:
    """One planned pass token: the root ``u_0`` or a provisional draft.

    ``state`` is the branch this node's k/v row was appended through —
    the request's live :class:`~repro.core.decode.DecodeState` for the
    root and every only-child below it (``in_state``), a shadow state
    over a cache fork for every sibling branch.
    """

    __slots__ = (
        "parent", "embedding", "token_index", "state", "in_state",
        "children",
    )

    def __init__(
        self,
        parent: _TreeNode | None,
        embedding: np.ndarray,
        token_index: int,
        state: DecodeState,
        in_state: bool,
    ) -> None:
        self.parent = parent
        self.embedding = embedding
        self.token_index = token_index
        self.state = state
        self.in_state = in_state
        self.children: list[_TreeNode] = []


def tree_causal_mask(spec_pass: _SpecPass) -> np.ndarray:
    """The pass's tree-causal attention mask over its planned tokens.

    ``mask[i, j]`` is True exactly when pass token ``i`` attends to
    pass token ``j`` — i.e. when ``j`` is ``i`` or one of its tree
    ancestors (every token also attends to the whole committed prefix,
    which is shared by construction).  The packed verification launch
    realises this mask *structurally*: each branch's forked block table
    gathers only that branch's ancestor rows, so the single
    whole-batch ``table_gather_mac`` call per phase scores every branch
    with no masking arithmetic.  Exposed for tests and docs; the
    engine never materialises it.
    """
    n = len(spec_pass.nodes)
    mask = np.zeros((n, n), dtype=bool)
    for node in spec_pass.nodes:
        cursor: _TreeNode | None = node
        while cursor is not None:
            mask[node.token_index, cursor.token_index] = True
            cursor = cursor.parent
    return mask


class _SpecPass:
    """One planned verification pass (a draft tree) awaiting execution.

    ``nodes`` is every planned token in job order (the root first,
    then level by level); ``drafts`` the draft embeddings in the same
    order (the linear chain's historical view of the pass); ``forks``
    the branch caches to release at finish; ``in_state_tokens`` how
    many pass tokens were appended to the live state's own cache.
    """

    __slots__ = (
        "job", "x0", "drafts", "state", "root", "nodes", "forks",
        "in_state_tokens",
    )

    def __init__(
        self,
        job: _Job,
        x0: np.ndarray,
        root: _TreeNode,
        nodes: list[_TreeNode],
        forks: list[KVCacheLike],
        in_state_tokens: int,
    ) -> None:
        self.job = job
        self.x0 = x0
        self.root = root
        self.nodes = nodes
        self.forks = forks
        self.in_state_tokens = in_state_tokens
        self.drafts = [node.embedding for node in nodes[1:]]
        self.state = job.state


# ----------------------------------------------------------------------
# The engine.
# ----------------------------------------------------------------------


class SpeculativeDecodeEngine:
    """Draft-and-verify decode wrapping one :class:`NovaDecodeEngine`.

    ``engine`` is an existing decode engine (shared with the plain
    paths — same unit, same tables, same caches) or anything its
    constructor accepts (a :class:`~repro.core.config.NovaConfig`, a
    preset name, ``None``).  ``spec_k`` / ``draft`` default from the
    engine's config (``config.spec_k`` drafts through
    :func:`build_draft`'s ``config.draft_kind``).  ``tree`` switches a
    pass from the linear chain to a :class:`DraftTree` (a tree object
    or a ``"2x2,1x4"`` spec string; defaults to ``config.spec_tree``,
    and to the degenerate ``DraftTree.linear(spec_k)`` chain when that
    is ``None`` too).

    The primitive pair :meth:`plan_verify_pass` /
    :meth:`finish_verify_pass` is what the continuous batcher fuses
    with in-flight plain decodes; :meth:`generate` is the solo loop.
    """

    def __init__(
        self,
        engine: NovaDecodeEngine | NovaConfig | str | None = None,
        draft: DraftModel | None = None,
        spec_k: int | None = None,
        tree: DraftTree | str | None = None,
    ) -> None:
        if not isinstance(engine, NovaDecodeEngine):
            engine = NovaDecodeEngine(engine)
        self.engine = engine
        cfg = engine.config
        self.spec_k = cfg.spec_k if spec_k is None else int(spec_k)
        if self.spec_k < 1:
            raise ValueError(
                f"spec_k must be >= 1 (a pass of one draft), got "
                f"{self.spec_k}; use the plain decode engine for "
                "non-speculative serving"
            )
        if tree is None:
            tree = cfg.spec_tree
        if tree is None:
            self.tree = DraftTree.linear(self.spec_k)
        elif isinstance(tree, str):
            self.tree = DraftTree.parse(tree)
        else:
            self.tree = tree
        self._draft = draft

    @property
    def draft(self) -> DraftModel:
        """The engine's default draft model.

        Built lazily from ``config.draft_kind`` when none was passed:
        callers that supply their own draft on every call (the
        continuous batcher holds one per sequence) never construct the
        default.
        """
        if self._draft is None:
            cfg = self.engine.config
            self._draft = build_draft(cfg.draft_kind, cfg)
        return self._draft

    @property
    def config(self) -> NovaConfig:
        """The wrapped engine's geometry."""
        return self.engine.config

    @property
    def unit(self) -> NovaVectorUnit:
        """The wrapped engine's shared vector unit."""
        return self.engine.unit

    def start(
        self,
        request: DecodeRequest,
        cache: KVCacheLike | None = None,
        pool: BlockPool | None = None,
        prefix: bool = False,
    ) -> DecodeState:
        """Open a decode state (delegates to the wrapped engine).

        ``prefix=True`` adopts cached prompt blocks exactly as the
        plain engine does; speculative rollback composes with sharing
        because :meth:`~repro.core.paging.PagedKVCache.truncate` only
        drops this request's *references* on shared tail blocks.
        """
        return self.engine.start(request, cache=cache, pool=pool,
                                 prefix=prefix)

    # ------------------------------------------------------------------
    # The draft-and-verify primitives.
    # ------------------------------------------------------------------

    @staticmethod
    def _rollback(state: DecodeState, n: int) -> None:
        if n:
            state.cache.truncate(n)
            state.position -= n

    def plan_verify_pass(
        self,
        state: DecodeState,
        x_t: np.ndarray,
        budget: int,
        draft: DraftModel | None = None,
        max_drafts: int | None = None,
    ) -> _SpecPass:
        """Stage one verification pass: ``x_t`` plus the draft tree's
        provisional tokens, all appended as cached k/v rows.

        The tree grows level by level.  An only child extends its
        parent's branch cache in place; siblings each append under a
        ``fork()`` of the parent cache (copy-on-write block sharing on
        the paged layer), so every node's gathered KV span is exactly
        its ancestor chain — the tree-causal mask, structurally
        (:func:`tree_causal_mask`).  All planned tokens form **one**
        job: the engine's packed execute scores the whole tree in a
        single ``table_gather_mac`` launch per phase.  A width-1 tree
        takes the historical linear path exactly (same proposal calls,
        no forks).

        ``budget`` caps the pass at the tokens still owed (a pass never
        commits more than ``budget``, so the tree is clipped to
        ``budget - 1`` levels; ``max_drafts`` clips levels the same
        way — ``0`` plans just ``u_0``).  A branch stops growing at its
        cache's window limit — provisional tokens must never evict,
        because eviction cannot be rolled back.  The plan is
        **atomic**: any failure (draft shape mismatch,
        ``BlockPoolExhausted`` on a provisional block or fork, a
        raising draft model) releases every fork and rolls the cache,
        the pool and the position back to their pre-pass state before
        the exception propagates.
        """
        draft = self.draft if draft is None else draft
        if budget < 1:
            raise ValueError(f"pass budget must be >= 1, got {budget}")
        engine = self.engine
        request = state.request
        x_t = np.asarray(x_t, dtype=np.float64).reshape(-1)
        # Shape-checked before any state change (the engine's own check
        # inside _plan_token would fire too, but only after reshaping).
        if x_t.shape[0] != request.hidden:
            raise ValueError(
                f"token embedding must have hidden width {request.hidden}, "
                f"got {x_t.shape[0]}"
            )
        widths = self.tree.widths
        if max_drafts is not None:
            widths = widths[: max(0, max_drafts)]
        widths = widths[: budget - 1]
        tokens: list[_TokenPlan] = []
        nodes: list[_TreeNode] = []
        forks: list[KVCacheLike] = []
        in_state = 0
        try:
            tokens.append(engine._plan_token(state, x_t))
            in_state = 1
            root = _TreeNode(None, x_t, 0, state, True)
            nodes.append(root)
            frontier = [root]
            for width in widths:
                next_frontier: list[_TreeNode] = []
                for node in frontier:
                    cache = node.state.cache
                    if cache.length >= cache.limit:
                        # Branch at its window limit: one more
                        # provisional append would evict.
                        continue
                    candidates = _draft_candidates(
                        draft, request, cache, node.embedding,
                        node.state.position - 1, width,
                    )
                    for d in candidates:
                        if d.shape[0] != request.hidden:
                            raise ValueError(
                                f"draft proposed an embedding of width "
                                f"{d.shape[0]}, expected {request.hidden}"
                            )
                    if len(candidates) == 1:
                        # An only child extends the branch in place.
                        child_states = [node.state]
                    else:
                        child_states = []
                        for _ in candidates:
                            fork = cache.fork()
                            forks.append(fork)
                            shadow = DecodeState(request, fork)
                            shadow.position = node.state.position
                            child_states.append(shadow)
                    for d, child_state in zip(candidates, child_states):
                        tokens.append(engine._plan_token(child_state, d))
                        child = _TreeNode(
                            node, d, len(tokens) - 1, child_state,
                            child_state is state,
                        )
                        if child.in_state:
                            in_state += 1
                        nodes.append(child)
                        node.children.append(child)
                        next_frontier.append(child)
                frontier = next_frontier
                if not frontier:
                    break
        except BaseException:
            # Atomic rollback: forks release their block references,
            # then the in-place appends truncate.  Only u_0's append
            # can have evicted (and only when the cache sat exactly at
            # its window limit, in which case no level ever grew, so
            # nothing can raise after it), so this restores cache, pool
            # and position exactly.
            for fork in forks:
                fork.reset()
            self._rollback(state, in_state)
            raise
        return _SpecPass(
            _Job(state, "verify", tokens), x_t, root, nodes, forks, in_state
        )

    def finish_verify_pass(
        self,
        spec_pass: _SpecPass,
        result: _JobResult,
        draft: DraftModel | None = None,
    ) -> tuple[list[SpeculativeStepResult], VerifyPassResult]:
        """Commit the longest-accepted branch, roll back every other.

        ``result`` is the pass's ``_JobResult`` from
        :meth:`NovaDecodeEngine._execute`.  The walk starts at the root
        and, at each depth, descends into the child whose drafted
        embedding equals the parent's true output bit for bit (siblings
        are deduplicated at plan time, so at most one can match); the
        walked path is the longest accepted branch.  Returns its
        committed steps (at least one — ``u_0``'s input is the true
        previous output by construction) and the pass accounting.
        Before returning, every branch fork releases its block
        references, the live cache truncates the in-place tokens the
        path does not cover, and the path's fork-resident rows are
        re-appended to the live cache (recomputing the k/v projection
        is deterministic, hence bit-identical to the rows the released
        fork held) — zero pool blocks leak for any accept pattern.
        """
        draft = self.draft if draft is None else draft
        state = spec_pass.state
        tokens = spec_pass.job.tokens
        outputs = result.outputs
        path = [spec_pass.root]
        node = spec_pass.root
        while True:
            out = outputs[node.token_index]
            match = None
            for child in node.children:
                if np.array_equal(child.embedding, out):
                    match = child
                    break
            if match is None:
                break
            path.append(match)
            node = match
        accepted = len(path) - 1
        committed = accepted + 1
        rolled_back = len(tokens) - committed
        # Forks first (shared tail blocks drop to their surviving
        # refcounts), then the in-place suffix beyond the accepted
        # in-place prefix truncates — the accepted path can only leave
        # the live cache for a fork, never come back, so the in-place
        # tokens it covers are exactly a prefix.
        for fork in spec_pass.forks:
            fork.reset()
        kept_in_state = sum(1 for n in path if n.in_state)
        self._rollback(state, spec_pass.in_state_tokens - kept_in_state)
        request = state.request
        for n in path:
            if not n.in_state:
                _, k_t, v_t = project_token(
                    n.embedding, request.wq, request.wk, request.wv,
                    request.n_heads,
                )
                state.cache.append(k_t, v_t)
                state.position += 1
        lanes = self.engine.n_lanes
        heads = request.n_heads
        steps: list[SpeculativeStepResult] = []
        for i, n in enumerate(path):
            probs = result.probabilities[n.token_index]
            kv_len = probs.shape[-1]
            n_exp = heads * kv_len
            steps.append(
                SpeculativeStepResult(
                    output=outputs[n.token_index],
                    probabilities=probs,
                    position=tokens[n.token_index].position,
                    kv_length=kv_len,
                    drafted=i > 0,
                    vector_cycles=-(-n_exp // lanes) + -(-heads // lanes),
                    nonlinear_queries=n_exp + heads,
                )
            )
            draft.observe(
                n.embedding, outputs[n.token_index],
                tokens[n.token_index].position,
            )
        return steps, VerifyPassResult(
            tokens=len(tokens),
            drafted=len(spec_pass.drafts),
            accepted=accepted,
            committed=committed,
            rolled_back=rolled_back,
            vector_cycles=result.vector_cycles,
            nonlinear_queries=result.nonlinear_queries,
            counters=result.counters,
        )

    def plan_with_fallback(
        self,
        state: DecodeState,
        x_t: np.ndarray,
        budget: int,
        draft: DraftModel | None = None,
    ) -> _SpecPass:
        """Plan a pass, degrading to draft-free on pool exhaustion.

        Speculation is opportunistic: when the block pool cannot hold
        the provisional tokens, a pass of just ``u_0`` (one plain decode
        step's worth of memory) still makes progress.  Only when even
        that cannot allocate does :class:`~repro.core.paging.
        BlockPoolExhausted` propagate (with cache and pool untouched) —
        the scheduler's cue to defer or preempt.
        """
        from repro.core.paging import BlockPoolExhausted

        try:
            return self.plan_verify_pass(state, x_t, budget, draft=draft)
        except BlockPoolExhausted:
            return self.plan_verify_pass(
                state, x_t, budget, draft=draft, max_drafts=0
            )

    # ------------------------------------------------------------------
    # The solo loop.
    # ------------------------------------------------------------------

    def generate(
        self,
        request: DecodeRequest,
        max_new_tokens: int | None = None,
        state: DecodeState | None = None,
        draft: DraftModel | None = None,
    ) -> SpeculativeGenerateResult:
        """Prefill, then generate speculatively until the budget is met.

        Bit-identical outputs to the wrapped engine's
        :meth:`~repro.core.decode.NovaDecodeEngine.generate` for the
        same request, with the same admission-time validation.
        """
        engine = self.engine
        new_tokens = (
            request.max_new_tokens
            if max_new_tokens is None
            else max_new_tokens
        )
        if new_tokens < 0:
            raise ValueError(
                f"max_new_tokens must be >= 0, got {new_tokens}"
            )
        if request.window is None and request.seq + new_tokens > request.capacity:
            raise KVCacheOverflow(
                f"generate needs {request.seq + new_tokens} cache slots "
                f"({request.seq} prompt + {new_tokens} new) but the "
                f"request's capacity is {request.capacity}; shorten "
                "max_new_tokens, raise max_seq_len, or set a sliding "
                "window"
            )
        draft = self.draft if draft is None else draft
        draft.reset()
        if state is None:
            state = engine.start(request)
        before = engine.unit._lifetime_counters()
        pre = engine.prefill(state)
        # Seed stateful drafts with the prompt's own (input, output)
        # trajectory, exactly as the committed steps will extend it.
        for position, (x_row, out_row) in enumerate(
            zip(request.x, pre.outputs)
        ):
            draft.observe(x_row, out_row, position)
        steps: list[SpeculativeStepResult] = []
        passes: list[VerifyPassResult] = []
        x_t = pre.outputs[-1]
        actual_cycles = pre.vector_cycles
        sequential_cycles = pre.vector_cycles
        while len(steps) < new_tokens:
            spec_pass = self.plan_with_fallback(
                state, x_t, new_tokens - len(steps), draft=draft
            )
            (result,), _ = engine._execute([spec_pass.job])
            new_steps, pass_result = self.finish_verify_pass(
                spec_pass, result, draft=draft
            )
            steps.extend(new_steps)
            passes.append(pass_result)
            x_t = new_steps[-1].output
            actual_cycles += pass_result.vector_cycles
            sequential_cycles += sum(s.vector_cycles for s in new_steps)
        generated = (
            np.stack([s.output for s in steps])
            if steps
            else np.zeros((0, request.hidden))
        )
        return SpeculativeGenerateResult(
            prefill=pre,
            steps=tuple(steps),
            passes=tuple(passes),
            generated=generated,
            vector_cycles=actual_cycles,
            sequential_vector_cycles=sequential_cycles,
            counters=engine.unit._lifetime_counters().diff(before),
        )
