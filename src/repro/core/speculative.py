"""Speculative decode on the NOVA overlay: draft-and-verify over paged KV.

Every output token of the plain decode path costs one full pass through
the overlay — one exp stream, one reciprocal stream, one table retarget
each — even though a single decode row rarely fills the lane grid.
Speculative decode amortises that per-step overhead the same way the
prefill path amortises a whole prompt: a cheap **draft model** proposes
the next ``k`` token embeddings, the engine appends them to the KV cache
as *provisional* tokens, and one **packed verification pass** scores all
``k + 1`` positions in a single overlay traversal (the fold-small-ops-
into-one-pass idea the ROADMAP names).  Accepted drafts commit; the
rejected suffix rolls back atomically by truncating the cache — on a
:class:`~repro.core.paging.PagedKVCache` that frees whole tail blocks
back to the shared pool.

Why this is bit-exact by construction
-------------------------------------
The decode loop is deterministic: the next token's embedding *is* the
attention output at the last position.  A verification pass feeds the
chain ``u_0 = x_t, u_1 = d_1, ..., u_k = d_k`` (``d_i`` drafted) through
the exact per-token numerics of :class:`~repro.core.decode.
NovaDecodeEngine` and obtains the true outputs ``o_0 ... o_k``.  Draft
``d_i`` is **accepted only when it equals ``o_{i-1}`` bit for bit** — in
which case position ``i``'s input was exactly what plain decode would
have fed, so ``o_i`` is exactly what plain decode would have produced.
The first mismatch truncates: positions past it attended to a wrong
input, so their cache rows and outputs are discarded.  Committed outputs
are therefore *always* the plain-decode outputs, for **any** draft model
— a bad draft costs cycles (rolled-back work), never correctness.  The
property suite pins this under arbitrary accept/reject programs
(:class:`ScheduledDraft`), and ``u_0`` guarantees at least one committed
token per pass.

Draft models
------------
:class:`TruncatedTableDraft` re-runs the per-token host numerics through
the *same compiled LUT objects* the engine holds (``QuantizedPwl.
evaluate`` is the golden model the hardware is bit-exact against), so at
``fidelity=1.0`` every proposal verifies bit-identically with zero
overlay cost.  ``fidelity < 1.0`` drafts a seeded, per-position fraction
of tokens through the same LUTs at *reduced output precision* instead —
those proposals disagree and are rejected, making ``fidelity`` the
long-run acceptance-rate knob the serving studies sweep (the simulator
stand-in for draft-model quality).  :class:`NGramDraft` is the
model-free alternative: it replays the output last seen after a
matching (reduced-precision-keyed) input, which starts paying off once
a self-fed trajectory revisits states.  :class:`ScheduledDraft` follows
an explicit accept/reject program — the test and golden-trace
instrument.

Accounting
----------
Each verification pass is charged what the overlay actually spends (the
packed closed form over *all* pass tokens, rolled-back ones included);
:class:`SpeculativeGenerateResult` additionally reports the closed-form
**sequential-equivalent** cycles — exactly what plain ``generate`` would
have charged for the same committed tokens (a pinned invariant) — plus
drafted / accepted / rolled-back token counts per pass and in total.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

import numpy as np

from repro.core.attention import (
    assemble_probabilities,
    shift_scores,
    softmax_reduction,
)
from repro.core.config import DRAFT_KINDS, NovaConfig, as_config
from repro.core.decode import (
    CausalPrefillResult,
    DecodeRequest,
    DecodeState,
    KVCacheOverflow,
    NovaDecodeEngine,
    _Job,
    context_for_query,
    project_token,
    scores_for_query,
)
from repro.noc.stats import EventCounters

if TYPE_CHECKING:
    from repro.approx.quantize import QuantizedPwl
    from repro.core.decode import KVCacheLike, _JobResult
    from repro.core.paging import BlockPool
    from repro.core.vector_unit import NovaVectorUnit

__all__ = [
    "DraftModel",
    "NGramDraft",
    "TruncatedTableDraft",
    "ScheduledDraft",
    "build_draft",
    "host_step_output",
    "SpeculativeStepResult",
    "VerifyPassResult",
    "SpeculativeGenerateResult",
    "SpeculativeDecodeEngine",
]


# ----------------------------------------------------------------------
# The exact per-token step on the host (the draft models' substrate).
# ----------------------------------------------------------------------


def host_step_output(
    request: DecodeRequest,
    cache: KVCacheLike,
    x_t: np.ndarray,
    exp_table: QuantizedPwl,
    recip_table: QuantizedPwl,
    drop_to_bits: int | None = None,
) -> np.ndarray:
    """One decode step's attention output, computed entirely on the host.

    ``cache`` must already hold ``x_t``'s k/v row (the engine appends
    before asking for a proposal).  With the engine's own compiled
    tables and ``drop_to_bits=None`` this reproduces the verification
    pass **bit for bit**: the helpers are the single shared copies the
    engine executes (:func:`~repro.core.decode.project_token`,
    :func:`~repro.core.attention.softmax_reduction`, ...) and
    ``QuantizedPwl.evaluate`` is the golden model the overlay is
    bit-exact against.  ``drop_to_bits=b`` rounds both non-linear
    results to ``b`` fraction bits — the same LUTs at reduced
    precision, which is how :class:`TruncatedTableDraft` models a
    lower-fidelity draft.
    """
    x_t = np.asarray(x_t, dtype=np.float64).reshape(-1)
    q, _, _ = project_token(
        x_t, request.wq, request.wk, request.wv, request.n_heads
    )
    scores = scores_for_query(q, cache.keys)
    raw = exp_table.evaluate(shift_scores(scores))
    if drop_to_bits is not None:
        raw = np.ldexp(np.round(np.ldexp(raw, drop_to_bits)), -drop_to_bits)
    numer, mantissa, exponent = softmax_reduction(raw)
    inv = recip_table.evaluate(mantissa)
    if drop_to_bits is not None:
        inv = np.ldexp(np.round(np.ldexp(inv, drop_to_bits)), -drop_to_bits)
    probs = assemble_probabilities(numer, inv, exponent)
    context = context_for_query(probs, cache.values_snapshot(cache.length))
    return context @ request.wo


# ----------------------------------------------------------------------
# Draft models.
# ----------------------------------------------------------------------


@runtime_checkable
class DraftModel(Protocol):
    """What the speculative engine needs from a draft.

    ``propose(request, cache, x_t, position)`` predicts the attention
    output of token ``x_t`` at absolute ``position`` (the cache already
    holds ``x_t``'s k/v row); the prediction becomes the next drafted
    input.  ``observe(x_t, output, position)`` feeds back every
    *committed* (input, true output) pair so stateful drafts can learn
    the trajectory; ``reset()`` clears per-request state.  Proposals
    must be deterministic in ``(cache state, x_t, position)`` — the
    continuous batcher relies on that to stay result-identical to
    one-at-a-time speculative decode.
    """

    def propose(
        self,
        request: DecodeRequest,
        cache: KVCacheLike,
        x_t: np.ndarray,
        position: int,
    ) -> np.ndarray: ...

    def observe(
        self, x_t: np.ndarray, output: np.ndarray, position: int
    ) -> None: ...

    def reset(self) -> None: ...


class TruncatedTableDraft:
    """Draft by re-running the engine's compiled LUTs on the host.

    At ``fidelity=1.0`` (the default) every proposal runs the exact
    per-token numerics through the very table objects the engine
    compiled — bit-identical to the verification output, so every draft
    is accepted: the draft pays host arithmetic, the overlay pays one
    packed pass per ``spec_k + 1`` tokens.  At ``fidelity < 1.0`` a
    seeded per-position coin drafts the complementary fraction through
    the same LUTs truncated to ``reduced_bits`` output fraction bits;
    those proposals miss verification, so ``fidelity`` is the long-run
    acceptance rate of a uniformly-mixed workload — the knob standing
    in for draft-model quality in the serving studies.  The coin is
    keyed on ``(seed, absolute position)``, never on pass boundaries,
    so acceptance decisions are identical no matter how steps are
    grouped into passes or scheduler steps.
    """

    def __init__(
        self,
        config: NovaConfig | str | None = None,
        fidelity: float = 1.0,
        seed: int = 0,
        reduced_bits: int = 4,
    ) -> None:
        if not 0.0 <= fidelity <= 1.0:
            raise ValueError(f"fidelity must be in [0, 1], got {fidelity}")
        if reduced_bits < 0:
            raise ValueError(
                f"reduced_bits must be >= 0, got {reduced_bits}"
            )
        cfg = as_config(config)
        self.fidelity = float(fidelity)
        self.seed = int(seed)
        self.reduced_bits = int(reduced_bits)
        self._exp = cfg.table("exp")
        self._recip = cfg.table("reciprocal")

    def _exact(self, position: int) -> bool:
        if self.fidelity >= 1.0:
            return True
        if self.fidelity <= 0.0:
            return False
        coin = np.random.default_rng((self.seed, position)).random()
        return bool(coin < self.fidelity)

    def propose(
        self,
        request: DecodeRequest,
        cache: KVCacheLike,
        x_t: np.ndarray,
        position: int,
    ) -> np.ndarray:
        return host_step_output(
            request, cache, x_t, self._exp, self._recip,
            drop_to_bits=None if self._exact(position) else self.reduced_bits,
        )

    def observe(
        self, x_t: np.ndarray, output: np.ndarray, position: int
    ) -> None:
        pass

    def reset(self) -> None:
        pass

    def __repr__(self) -> str:
        return (
            f"TruncatedTableDraft(fidelity={self.fidelity:g}, "
            f"seed={self.seed}, reduced_bits={self.reduced_bits})"
        )


class NGramDraft:
    """Model-free draft: replay the output last seen after this input.

    Committed ``(input, output)`` pairs are memoised under a
    reduced-precision key of the input embedding
    (``round(x * 2**key_bits)``); a proposal is the stored follower of
    the matching key, falling back to persistence (propose ``x_t``
    itself) on a miss.  Deterministic and overlay-free; it starts
    earning acceptances when a self-fed trajectory converges or revisits
    states bit-exactly — otherwise every pass still commits its one
    guaranteed token and the engine degrades gracefully toward plain
    decode (plus the rolled-back draft work).
    """

    def __init__(self, key_bits: int = 10, max_history: int = 65536) -> None:
        if key_bits < 0:
            raise ValueError(f"key_bits must be >= 0, got {key_bits}")
        if max_history < 1:
            raise ValueError(f"max_history must be >= 1, got {max_history}")
        self.key_bits = int(key_bits)
        self.max_history = int(max_history)
        self._history: dict[bytes, np.ndarray] = {}

    def _key(self, x: np.ndarray) -> bytes:
        return (
            np.round(np.ldexp(np.asarray(x, dtype=np.float64), self.key_bits))
            .astype(np.int64)
            .tobytes()
        )

    def propose(
        self,
        request: DecodeRequest,
        cache: KVCacheLike,
        x_t: np.ndarray,
        position: int,
    ) -> np.ndarray:
        hit = self._history.get(self._key(x_t))
        return np.array(x_t if hit is None else hit, dtype=np.float64)

    def observe(
        self, x_t: np.ndarray, output: np.ndarray, position: int
    ) -> None:
        if len(self._history) >= self.max_history:
            self._history.clear()
        self._history[self._key(x_t)] = np.array(output, dtype=np.float64)

    def reset(self) -> None:
        self._history.clear()

    def __repr__(self) -> str:
        return (
            f"NGramDraft(key_bits={self.key_bits}, "
            f"history={len(self._history)})"
        )


class ScheduledDraft:
    """Follow an explicit accept/reject program (test/golden instrument).

    Entry ``i`` of ``program`` decides draft ``i`` of the run (cycling):
    ``True`` proposes through the exact host numerics (bit-identical —
    accepted at verification), ``False`` through the reduced-precision
    path (rejected).  This turns "arbitrary accept/reject/rollback
    sequences" into data the property suite can draw with hypothesis and
    the golden fixtures can pin per preset.
    """

    def __init__(
        self,
        config: NovaConfig | str | None,
        program: Iterable[object],
        reduced_bits: int = 4,
    ) -> None:
        cfg = as_config(config)
        self.program = tuple(bool(p) for p in program)
        if not self.program:
            raise ValueError("program must contain at least one decision")
        self.reduced_bits = int(reduced_bits)
        self._exp = cfg.table("exp")
        self._recip = cfg.table("reciprocal")
        self._cursor = 0

    def propose(
        self,
        request: DecodeRequest,
        cache: KVCacheLike,
        x_t: np.ndarray,
        position: int,
    ) -> np.ndarray:
        exact = self.program[self._cursor % len(self.program)]
        self._cursor += 1
        return host_step_output(
            request, cache, x_t, self._exp, self._recip,
            drop_to_bits=None if exact else self.reduced_bits,
        )

    def observe(
        self, x_t: np.ndarray, output: np.ndarray, position: int
    ) -> None:
        pass

    def reset(self) -> None:
        self._cursor = 0

    def __repr__(self) -> str:
        bits = "".join("1" if p else "0" for p in self.program)
        return f"ScheduledDraft(program={bits}, cursor={self._cursor})"


def build_draft(
    kind: str,
    config: NovaConfig | str | None = None,
    **kwargs: Any,
) -> DraftModel:
    """Construct one of the named :data:`~repro.core.config.DRAFT_KINDS`.

    ``"truncated-table"`` forwards ``config`` plus any
    :class:`TruncatedTableDraft` kwargs (``fidelity`` / ``seed`` /
    ``reduced_bits``); ``"ngram"`` takes :class:`NGramDraft` kwargs.
    """
    if kind == "truncated-table":
        return TruncatedTableDraft(config, **kwargs)
    if kind == "ngram":
        return NGramDraft(**kwargs)
    raise ValueError(
        f"unknown draft kind {kind!r}; known: {sorted(DRAFT_KINDS)}"
    )


# ----------------------------------------------------------------------
# Results.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SpeculativeStepResult:
    """One *committed* token of a speculative run.

    ``vector_cycles`` / ``nonlinear_queries`` are the closed-form
    sequential equivalent — exactly what a dedicated
    :meth:`~repro.core.decode.NovaDecodeEngine.decode_step` would have
    charged for this token (the overlay's real spend lives on the pass,
    see :class:`VerifyPassResult`).  ``drafted`` marks tokens whose
    *input* came from an accepted draft rather than the previous
    committed output directly.
    """

    output: np.ndarray            # (hidden,)
    probabilities: np.ndarray     # (n_heads, kv_length)
    position: int
    kv_length: int
    drafted: bool
    vector_cycles: int
    nonlinear_queries: int


@dataclass(frozen=True)
class VerifyPassResult:
    """One draft-and-verify round trip through the overlay.

    ``tokens`` positions went through the packed pass (``drafted`` of
    them provisional); ``committed = accepted + 1`` survived (``u_0`` is
    always committed), ``rolled_back`` were truncated from the cache.
    ``vector_cycles`` / ``counters`` are what the overlay actually
    charged for the whole pass, rolled-back work included.
    """

    tokens: int
    drafted: int
    accepted: int
    committed: int
    rolled_back: int
    vector_cycles: int
    nonlinear_queries: int
    counters: EventCounters


@dataclass(frozen=True)
class SpeculativeGenerateResult:
    """Prefill plus speculative draft-and-verify generation.

    ``generated`` is **bit-identical** to plain
    :meth:`~repro.core.decode.NovaDecodeEngine.generate` of the same
    request — for any draft model.  ``vector_cycles`` is the overlay's
    real spend (prefill + every packed verification pass, rolled-back
    work included); ``sequential_vector_cycles`` the closed-form cost
    plain generate would have charged for the same tokens (a pinned
    invariant: it equals the plain run's ``vector_cycles`` exactly), so
    ``cycle_speedup`` isolates the speculation win on the cycle side.
    """

    prefill: CausalPrefillResult
    steps: tuple[SpeculativeStepResult, ...]
    passes: tuple[VerifyPassResult, ...]
    generated: np.ndarray         # (n_generated, hidden)
    vector_cycles: int
    sequential_vector_cycles: int
    counters: EventCounters

    @property
    def n_generated(self) -> int:
        """Tokens generated after the prompt."""
        return len(self.steps)

    @property
    def verify_passes(self) -> int:
        """Verification passes run."""
        return len(self.passes)

    @property
    def drafted_tokens(self) -> int:
        """Draft proposals made across every pass."""
        return sum(p.drafted for p in self.passes)

    @property
    def accepted_tokens(self) -> int:
        """Draft proposals that verified bit-exactly."""
        return sum(p.accepted for p in self.passes)

    @property
    def rolled_back_tokens(self) -> int:
        """Provisional tokens truncated from the cache."""
        return sum(p.rolled_back for p in self.passes)

    @property
    def acceptance_rate(self) -> float:
        """Accepted fraction of drafted tokens (0.0 with no drafts)."""
        drafted = self.drafted_tokens
        return self.accepted_tokens / drafted if drafted else 0.0

    @property
    def tokens_per_pass(self) -> float:
        """Mean committed tokens per verification pass (>= 1)."""
        return self.n_generated / max(1, self.verify_passes)

    @property
    def decode_vector_cycles(self) -> int:
        """Overlay cycles spent in verification passes only."""
        return self.vector_cycles - self.prefill.vector_cycles

    @property
    def cycle_speedup(self) -> float:
        """Sequential-equivalent cycles per actually-charged cycle."""
        if self.vector_cycles == 0:
            return 1.0
        return self.sequential_vector_cycles / self.vector_cycles


class _SpecPass:
    """One planned verification pass awaiting execution."""

    __slots__ = ("job", "x0", "drafts", "state")

    def __init__(
        self, job: _Job, x0: np.ndarray, drafts: list[np.ndarray]
    ) -> None:
        self.job = job
        self.x0 = x0
        self.drafts = drafts
        self.state = job.state


# ----------------------------------------------------------------------
# The engine.
# ----------------------------------------------------------------------


class SpeculativeDecodeEngine:
    """Draft-and-verify decode wrapping one :class:`NovaDecodeEngine`.

    ``engine`` is an existing decode engine (shared with the plain
    paths — same unit, same tables, same caches) or anything its
    constructor accepts (a :class:`~repro.core.config.NovaConfig`, a
    preset name, ``None``).  ``spec_k`` / ``draft`` default from the
    engine's config (``config.spec_k`` drafts through
    :func:`build_draft`'s ``config.draft_kind``).

    The primitive pair :meth:`plan_verify_pass` /
    :meth:`finish_verify_pass` is what the continuous batcher fuses
    with in-flight plain decodes; :meth:`generate` is the solo loop.
    """

    def __init__(
        self,
        engine: NovaDecodeEngine | NovaConfig | str | None = None,
        draft: DraftModel | None = None,
        spec_k: int | None = None,
    ) -> None:
        if not isinstance(engine, NovaDecodeEngine):
            engine = NovaDecodeEngine(engine)
        self.engine = engine
        cfg = engine.config
        self.spec_k = cfg.spec_k if spec_k is None else int(spec_k)
        if self.spec_k < 1:
            raise ValueError(
                f"spec_k must be >= 1 (a pass of one draft), got "
                f"{self.spec_k}; use the plain decode engine for "
                "non-speculative serving"
            )
        self._draft = draft

    @property
    def draft(self) -> DraftModel:
        """The engine's default draft model.

        Built lazily from ``config.draft_kind`` when none was passed:
        callers that supply their own draft on every call (the
        continuous batcher holds one per sequence) never construct the
        default.
        """
        if self._draft is None:
            cfg = self.engine.config
            self._draft = build_draft(cfg.draft_kind, cfg)
        return self._draft

    @property
    def config(self) -> NovaConfig:
        """The wrapped engine's geometry."""
        return self.engine.config

    @property
    def unit(self) -> NovaVectorUnit:
        """The wrapped engine's shared vector unit."""
        return self.engine.unit

    def start(
        self,
        request: DecodeRequest,
        cache: KVCacheLike | None = None,
        pool: BlockPool | None = None,
        prefix: bool = False,
    ) -> DecodeState:
        """Open a decode state (delegates to the wrapped engine).

        ``prefix=True`` adopts cached prompt blocks exactly as the
        plain engine does; speculative rollback composes with sharing
        because :meth:`~repro.core.paging.PagedKVCache.truncate` only
        drops this request's *references* on shared tail blocks.
        """
        return self.engine.start(request, cache=cache, pool=pool,
                                 prefix=prefix)

    # ------------------------------------------------------------------
    # The draft-and-verify primitives.
    # ------------------------------------------------------------------

    @staticmethod
    def _rollback(state: DecodeState, n: int) -> None:
        if n:
            state.cache.truncate(n)
            state.position -= n

    def plan_verify_pass(
        self,
        state: DecodeState,
        x_t: np.ndarray,
        budget: int,
        draft: DraftModel | None = None,
        max_drafts: int | None = None,
    ) -> _SpecPass:
        """Stage one verification pass: ``x_t`` plus up to ``spec_k``
        provisional draft tokens, all appended to the cache.

        ``budget`` caps the pass at the tokens still owed (a pass never
        commits more than it plans).  Drafting stops early at the
        cache's window limit — provisional tokens must never evict,
        because eviction cannot be rolled back.  The plan is **atomic**:
        any failure (draft shape mismatch, ``BlockPoolExhausted`` on a
        provisional block, a raising draft model) rolls the cache, the
        pool and the position back to their pre-pass state before the
        exception propagates.
        """
        draft = self.draft if draft is None else draft
        if budget < 1:
            raise ValueError(f"pass budget must be >= 1, got {budget}")
        engine = self.engine
        request = state.request
        cache = state.cache
        x_t = np.asarray(x_t, dtype=np.float64).reshape(-1)
        # Shape-checked before any state change (the engine's own check
        # inside _plan_token would fire too, but only after reshaping).
        if x_t.shape[0] != request.hidden:
            raise ValueError(
                f"token embedding must have hidden width {request.hidden}, "
                f"got {x_t.shape[0]}"
            )
        limit = (
            self.spec_k if max_drafts is None else min(self.spec_k, max_drafts)
        )
        tokens = []
        drafts: list[np.ndarray] = []
        try:
            tokens.append(engine._plan_token(state, x_t))
            x_i = x_t
            while (
                len(drafts) < limit
                and len(tokens) < budget
                and cache.length < cache.limit
            ):
                d = np.asarray(
                    draft.propose(request, cache, x_i, state.position - 1),
                    dtype=np.float64,
                ).reshape(-1)
                if d.shape[0] != request.hidden:
                    raise ValueError(
                        f"draft proposed an embedding of width {d.shape[0]}, "
                        f"expected {request.hidden}"
                    )
                drafts.append(d)
                tokens.append(engine._plan_token(state, d))
                x_i = d
        except BaseException:
            # Atomic rollback.  Only u_0's append can have evicted (and
            # only when the cache sat exactly at its window limit, in
            # which case the draft loop never ran, so nothing can raise
            # after it), so truncating the appended tokens restores
            # cache, pool and position exactly.
            self._rollback(state, len(tokens))
            raise
        return _SpecPass(_Job(state, "verify", tokens), x_t, drafts)

    def finish_verify_pass(
        self,
        spec_pass: _SpecPass,
        result: _JobResult,
        draft: DraftModel | None = None,
    ) -> tuple[list[SpeculativeStepResult], VerifyPassResult]:
        """Accept the longest bit-exact draft prefix, roll back the rest.

        ``result`` is the pass's ``_JobResult`` from
        :meth:`NovaDecodeEngine._execute`.  Returns the committed steps
        (at least one — ``u_0``'s input is the true previous output by
        construction) and the pass accounting; the rejected suffix is
        truncated from the cache before returning.
        """
        draft = self.draft if draft is None else draft
        state = spec_pass.state
        tokens = spec_pass.job.tokens
        outputs = result.outputs
        accepted = 0
        while accepted < len(spec_pass.drafts) and np.array_equal(
            spec_pass.drafts[accepted], outputs[accepted]
        ):
            accepted += 1
        committed = accepted + 1
        rolled_back = len(tokens) - committed
        self._rollback(state, rolled_back)
        lanes = self.engine.n_lanes
        heads = state.request.n_heads
        inputs = [spec_pass.x0, *spec_pass.drafts]
        steps: list[SpeculativeStepResult] = []
        for i in range(committed):
            probs = result.probabilities[i]
            kv_len = probs.shape[-1]
            n_exp = heads * kv_len
            steps.append(
                SpeculativeStepResult(
                    output=outputs[i],
                    probabilities=probs,
                    position=tokens[i].position,
                    kv_length=kv_len,
                    drafted=i > 0,
                    vector_cycles=-(-n_exp // lanes) + -(-heads // lanes),
                    nonlinear_queries=n_exp + heads,
                )
            )
            draft.observe(inputs[i], outputs[i], tokens[i].position)
        return steps, VerifyPassResult(
            tokens=len(tokens),
            drafted=len(spec_pass.drafts),
            accepted=accepted,
            committed=committed,
            rolled_back=rolled_back,
            vector_cycles=result.vector_cycles,
            nonlinear_queries=result.nonlinear_queries,
            counters=result.counters,
        )

    def plan_with_fallback(
        self,
        state: DecodeState,
        x_t: np.ndarray,
        budget: int,
        draft: DraftModel | None = None,
    ) -> _SpecPass:
        """Plan a pass, degrading to draft-free on pool exhaustion.

        Speculation is opportunistic: when the block pool cannot hold
        the provisional tokens, a pass of just ``u_0`` (one plain decode
        step's worth of memory) still makes progress.  Only when even
        that cannot allocate does :class:`~repro.core.paging.
        BlockPoolExhausted` propagate (with cache and pool untouched) —
        the scheduler's cue to defer or preempt.
        """
        from repro.core.paging import BlockPoolExhausted

        try:
            return self.plan_verify_pass(state, x_t, budget, draft=draft)
        except BlockPoolExhausted:
            return self.plan_verify_pass(
                state, x_t, budget, draft=draft, max_drafts=0
            )

    # ------------------------------------------------------------------
    # The solo loop.
    # ------------------------------------------------------------------

    def generate(
        self,
        request: DecodeRequest,
        max_new_tokens: int | None = None,
        state: DecodeState | None = None,
        draft: DraftModel | None = None,
    ) -> SpeculativeGenerateResult:
        """Prefill, then generate speculatively until the budget is met.

        Bit-identical outputs to the wrapped engine's
        :meth:`~repro.core.decode.NovaDecodeEngine.generate` for the
        same request, with the same admission-time validation.
        """
        engine = self.engine
        new_tokens = (
            request.max_new_tokens
            if max_new_tokens is None
            else max_new_tokens
        )
        if new_tokens < 0:
            raise ValueError(
                f"max_new_tokens must be >= 0, got {new_tokens}"
            )
        if request.window is None and request.seq + new_tokens > request.capacity:
            raise KVCacheOverflow(
                f"generate needs {request.seq + new_tokens} cache slots "
                f"({request.seq} prompt + {new_tokens} new) but the "
                f"request's capacity is {request.capacity}; shorten "
                "max_new_tokens, raise max_seq_len, or set a sliding "
                "window"
            )
        draft = self.draft if draft is None else draft
        draft.reset()
        if state is None:
            state = engine.start(request)
        before = engine.unit._lifetime_counters()
        pre = engine.prefill(state)
        # Seed stateful drafts with the prompt's own (input, output)
        # trajectory, exactly as the committed steps will extend it.
        for position, (x_row, out_row) in enumerate(
            zip(request.x, pre.outputs)
        ):
            draft.observe(x_row, out_row, position)
        steps: list[SpeculativeStepResult] = []
        passes: list[VerifyPassResult] = []
        x_t = pre.outputs[-1]
        actual_cycles = pre.vector_cycles
        sequential_cycles = pre.vector_cycles
        while len(steps) < new_tokens:
            spec_pass = self.plan_with_fallback(
                state, x_t, new_tokens - len(steps), draft=draft
            )
            (result,), _ = engine._execute([spec_pass.job])
            new_steps, pass_result = self.finish_verify_pass(
                spec_pass, result, draft=draft
            )
            steps.extend(new_steps)
            passes.append(pass_result)
            x_t = new_steps[-1].output
            actual_cycles += pass_result.vector_cycles
            sequential_cycles += sum(s.vector_cycles for s in new_steps)
        generated = (
            np.stack([s.output for s in steps])
            if steps
            else np.zeros((0, request.hidden))
        )
        return SpeculativeGenerateResult(
            prefill=pre,
            steps=tuple(steps),
            passes=tuple(passes),
            generated=generated,
            vector_cycles=actual_cycles,
            sequential_vector_cycles=sequential_cycles,
            counters=engine.unit._lifetime_counters().diff(before),
        )
