"""The NOVA line NoC: cycle-accurate broadcast of slope/bias beats.

One *broadcast* distributes a full PWL table (``n_beats`` beats) from the
head of the line to every router.  Beats launch back-to-back, one per NoC
cycle; each beat ripples through up to ``max_hops_per_cycle`` routers per
cycle via the clockless repeaters and is latched at segment boundaries
when the line is longer than that (multi-cycle traversal).

Event accounting per beat:

* ``beat_launch`` — once, at injection;
* ``wire_hop`` — one per router traversed (257 bits over ``hop_mm`` of
  repeated wire each);
* ``register_write`` — one per buffering router crossed (the segment
  boundary latch); single-cycle configurations have none.

Tag-match and pair-capture events are counted inside
:class:`~repro.core.router.NovaRouter`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.approx.quantize import LinkBeat
from repro.core.mapper import BroadcastSchedule
from repro.core.router import NovaRouter
from repro.noc.stats import EventCounters
from repro.noc.topology import LineTopology

__all__ = ["NovaNoc", "BroadcastResult"]


@dataclass(frozen=True)
class BroadcastResult:
    """Outcome of one table broadcast across the line.

    ``slopes_raw`` / ``biases_raw`` have shape ``(n_routers, n_neurons)``
    and hold the raw fixed-point codes each router captured.
    ``noc_cycles`` is the number of NoC cycles from first launch until the
    tail router captured the final beat.  ``captured`` is True where the
    lane's tag match fired; it is all-True except under an injected tag
    fault (lanes whose beat never matched).
    """

    slopes_raw: np.ndarray
    biases_raw: np.ndarray
    noc_cycles: int
    counters: EventCounters
    captured: np.ndarray | None = None

    @property
    def all_captured(self) -> bool:
        """True when every lane captured a pair."""
        return self.captured is None or bool(np.all(self.captured))


class NovaNoc:
    """A line of :class:`NovaRouter` driven by a broadcast schedule."""

    def __init__(
        self,
        topology: LineTopology,
        schedule: BroadcastSchedule,
        neurons_per_router: int,
    ) -> None:
        if topology.n_routers != schedule.n_routers:
            raise ValueError(
                f"topology has {topology.n_routers} routers but the schedule "
                f"was built for {schedule.n_routers}"
            )
        self.topology = topology
        self.schedule = schedule
        self.neurons_per_router = neurons_per_router
        self.routers = [
            NovaRouter(router_id=i, n_neurons=neurons_per_router)
            for i in range(topology.n_routers)
        ]
        buffering = set(schedule.buffering_routers)
        for router in self.routers:
            router.set_buffering(router.router_id in buffering)
        self.counters = EventCounters()
        self._next_broadcast_id = 0

    @property
    def n_routers(self) -> int:
        """Routers on the line."""
        return len(self.routers)

    def arrival_cycle(self, router_id: int) -> int:
        """NoC cycles after launch at which a beat reaches ``router_id``.

        0 for every router within the first repeater segment (single-cycle
        multi-hop), incrementing at each buffering router.
        """
        if not 0 <= router_id < self.n_routers:
            raise ValueError(
                f"router_id must be in [0, {self.n_routers}), got {router_id}"
            )
        return router_id // self.schedule.max_hops_per_cycle

    def broadcast(
        self,
        beats: list[LinkBeat],
        addresses: np.ndarray,
        fault: "LinkFault | None" = None,
    ) -> BroadcastResult:
        """Run one full table broadcast, cycle by cycle.

        Parameters
        ----------
        beats:
            The serialised table (from
            :func:`repro.approx.quantize.pack_beats`); its length must
            equal the schedule's beat count.
        addresses:
            Lookup addresses, shape ``(n_routers, n_neurons)``.
        fault:
            Optional single-bit link fault
            (:class:`repro.noc.faults.LinkFault`): routers at or past
            ``fault.from_router`` observe the corrupted image of beat
            ``fault.beat_index``.
        """
        schedule = self.schedule
        if len(beats) != schedule.n_beats:
            raise ValueError(
                f"expected {schedule.n_beats} beats, got {len(beats)}"
            )
        addresses = np.asarray(addresses, dtype=np.int64)
        expected_shape = (self.n_routers, self.neurons_per_router)
        if addresses.shape != expected_shape:
            raise ValueError(
                f"addresses must have shape {expected_shape}, got {addresses.shape}"
            )

        before = self.merged_counters()
        broadcast_id = self._next_broadcast_id
        self._next_broadcast_id += 1
        for router in self.routers:
            router.begin_lookup(
                broadcast_id, addresses[router.router_id], schedule.n_beats
            )

        # Pre-compute the corrupted image a fault victim observes.
        faulted_beat = None
        if fault is not None:
            from repro.noc.faults import apply_fault

            if not 0 <= fault.beat_index < len(beats):
                raise ValueError(
                    f"fault targets beat {fault.beat_index} but the "
                    f"broadcast has {len(beats)} beats"
                )
            faulted_beat = apply_fault(beats[fault.beat_index], fault)

        # Beat b launches at NoC cycle b and reaches router r at cycle
        # b + arrival_cycle(r).  Simulate cycle by cycle so multi-cycle
        # traversals interleave exactly as the hardware would.
        last_cycle = schedule.n_beats - 1 + self.arrival_cycle(self.n_routers - 1)
        buffering = set(schedule.buffering_routers)
        for cycle in range(last_cycle + 1):
            for beat_index, beat in enumerate(beats):
                if cycle < beat_index:
                    continue
                progress = cycle - beat_index  # segments completed so far
                start = progress * schedule.max_hops_per_cycle
                if start >= self.n_routers:
                    continue  # beat already retired
                end = min(start + schedule.max_hops_per_cycle, self.n_routers)
                if progress == 0:
                    self.counters.add("beat_launch")
                for router_id in range(start, end):
                    observed = beat
                    if (
                        faulted_beat is not None
                        and beat_index == fault.beat_index
                        and router_id >= fault.from_router
                    ):
                        observed = faulted_beat
                    self.routers[router_id].observe_beat(broadcast_id, observed)
                self.counters.add("wire_hop", end - start)
                if end < self.n_routers and end in buffering:
                    self.counters.add("register_write")

        slopes = np.zeros(expected_shape, dtype=np.int64)
        biases = np.zeros(expected_shape, dtype=np.int64)
        captured = None
        if fault is None:
            for router in self.routers:
                if not router.lookup_complete(broadcast_id):
                    raise RuntimeError(
                        f"router {router.router_id} did not complete lookup "
                        f"{broadcast_id}; broadcast schedule is inconsistent"
                    )
                s, b = router.pop_pairs(broadcast_id)
                slopes[router.router_id] = s
                biases[router.router_id] = b
        else:
            # Under an injected fault, lanes whose match never fired are
            # retired incomplete and reported through the captured mask.
            captured = np.zeros(expected_shape, dtype=bool)
            for router in self.routers:
                s, b, mask = router.pop_pairs_forced(broadcast_id)
                slopes[router.router_id] = s
                biases[router.router_id] = b
                captured[router.router_id] = mask

        return BroadcastResult(
            slopes_raw=slopes,
            biases_raw=biases,
            noc_cycles=last_cycle + 1,
            counters=self.merged_counters().diff(before),
            captured=captured,
        )

    def charge_broadcasts(
        self,
        n_broadcasts: int,
        tag_matches: np.ndarray,
        pair_captures: np.ndarray,
    ) -> None:
        """Closed-form event accounting for fault-free broadcasts.

        The vectorised stream path computes outputs by whole-batch table
        gather instead of driving :meth:`broadcast` per PE cycle, but the
        energy model still needs the events the hardware would have
        produced.  For a fault-free broadcast those are fully determined
        by the schedule (``beat_launch``, ``wire_hop``, ``register_write``
        per broadcast) and by the per-router address mix (``tag_match``,
        ``pair_capture``), so this method charges them in O(n_routers)
        instead of O(cycles).  Totals are *exactly* what ``n_broadcasts``
        calls of :meth:`broadcast` would have accumulated.

        Parameters
        ----------
        n_broadcasts:
            Number of table broadcasts being accounted (one per PE cycle
            of the stream).
        tag_matches, pair_captures:
            Per-router event totals across all ``n_broadcasts`` lookups,
            shape ``(n_routers,)``.
        """
        if n_broadcasts < 0:
            raise ValueError(f"n_broadcasts must be >= 0, got {n_broadcasts}")
        tag_matches = np.asarray(tag_matches, dtype=np.int64)
        pair_captures = np.asarray(pair_captures, dtype=np.int64)
        for arr, name in ((tag_matches, "tag_matches"),
                          (pair_captures, "pair_captures")):
            if arr.shape != (self.n_routers,):
                raise ValueError(
                    f"{name} must have shape ({self.n_routers},), got {arr.shape}"
                )
        for event, count in self.schedule.broadcast_event_counts(
            n_broadcasts
        ).items():
            if count:
                self.counters.add(event, count)
        for router in self.routers:
            router.counters.add("tag_match", int(tag_matches[router.router_id]))
            router.counters.add(
                "pair_capture", int(pair_captures[router.router_id])
            )
        self._next_broadcast_id += n_broadcasts

    def merged_counters(self) -> EventCounters:
        """Lifetime counters: NoC-level events plus every router's."""
        merged = self.counters.snapshot()
        for router in self.routers:
            merged = merged.merge(router.counters)
        return merged
