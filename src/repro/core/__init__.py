"""NOVA: the NoC-based vector unit (the paper's contribution).

The pipeline (paper Figs. 3 and 4):

1. A PE produces one output value per neuron per PE cycle.
2. The **comparator bank** compares each value against the PWL cut points
   and emits a *lookup address* (segment index).
3. The **NOVA NoC** — a 1-D line of routers with SMART-style clockless
   repeaters — broadcasts the table's slope/bias pairs, 8 pairs per
   257-bit beat, one beat per NoC cycle, reaching every router in a single
   NoC cycle (for <= 10 routers at 1 mm pitch).
4. Each router **tag-matches** the low address bits against the beat tag
   and captures the (slope, bias) pair at slot ``address >> k``.
5. The **MAC lane** computes ``slope * x + bias`` the next PE cycle.

With a 16-entry table the NoC runs at 2x the PE clock so both beats land
within one PE cycle, keeping end-to-end latency identical to the 2-cycle
LUT baseline (fetch, then MAC).

The :class:`NovaVectorUnit` offers a functional API (bit-exact against the
:class:`~repro.approx.quantize.QuantizedPwl` golden model) and a
cycle-accurate streaming API used by the energy evaluation.
"""

from repro.core.config import (
    NovaConfig,
    PRESETS,
    KERNEL_BACKENDS,
    preset,
    as_config,
)
from repro.core.comparator import ComparatorBank
from repro.core.kernels import (
    KernelBackend,
    NumpyBackend,
    LoopbackBackend,
    NumbaBackend,
    JaxBackend,
    BACKENDS,
    resolve_backend,
    available_backends,
    kernel_cache_info,
)
from repro.core.mac import MacLane
from repro.core.router import NovaRouter
from repro.core.noc import NovaNoc, BroadcastResult
from repro.core.mapper import NovaMapper, BroadcastSchedule
from repro.core.vector_unit import (
    NovaVectorUnit,
    ApproximationResult,
    FaultedResult,
    StreamResult,
)
from repro.core.overlay import (
    OverlayAttachment,
    ReactOverlay,
    SystolicOverlay,
    NvdlaOverlay,
)
from repro.core.table_scheduler import (
    TableScheduler,
    ScheduleReport,
    reconfiguration_cycles,
)
from repro.core.attention import NovaAttentionEngine, AttentionLayerResult
from repro.core.batched_attention import (
    AttentionRequest,
    BatchedAttentionResult,
    BatchedNovaAttentionEngine,
)
from repro.core.paging import (
    BlockPool,
    BlockPoolExhausted,
    BlockTable,
    PagedKVCache,
    pool_cache_info,
)
from repro.core.decode import (
    KVCache,
    KVCacheOverflow,
    DecodeRequest,
    DecodeState,
    DecodeStepResult,
    CausalPrefillResult,
    DecodeResult,
    GenerateResult,
    NovaDecodeEngine,
    ContinuousBatchScheduler,
    ContinuousBatchResult,
)
from repro.core.speculative import (
    DraftModel,
    NGramDraft,
    TruncatedTableDraft,
    ScheduledDraft,
    build_draft,
    SpeculativeDecodeEngine,
    SpeculativeGenerateResult,
)
from repro.core.session import NovaSession
from repro.core.streaming import StreamingLine, ObservationLog

__all__ = [
    "NovaConfig",
    "PRESETS",
    "KERNEL_BACKENDS",
    "preset",
    "as_config",
    "NovaSession",
    "KernelBackend",
    "NumpyBackend",
    "LoopbackBackend",
    "NumbaBackend",
    "JaxBackend",
    "BACKENDS",
    "resolve_backend",
    "available_backends",
    "kernel_cache_info",
    "ComparatorBank",
    "MacLane",
    "NovaRouter",
    "NovaNoc",
    "BroadcastResult",
    "NovaMapper",
    "BroadcastSchedule",
    "NovaVectorUnit",
    "ApproximationResult",
    "FaultedResult",
    "StreamResult",
    "OverlayAttachment",
    "ReactOverlay",
    "SystolicOverlay",
    "NvdlaOverlay",
    "TableScheduler",
    "ScheduleReport",
    "reconfiguration_cycles",
    "NovaAttentionEngine",
    "AttentionLayerResult",
    "AttentionRequest",
    "BatchedAttentionResult",
    "BatchedNovaAttentionEngine",
    "BlockPool",
    "BlockPoolExhausted",
    "BlockTable",
    "PagedKVCache",
    "pool_cache_info",
    "KVCache",
    "KVCacheOverflow",
    "DecodeRequest",
    "DecodeState",
    "DecodeStepResult",
    "CausalPrefillResult",
    "DecodeResult",
    "GenerateResult",
    "NovaDecodeEngine",
    "ContinuousBatchScheduler",
    "ContinuousBatchResult",
    "DraftModel",
    "NGramDraft",
    "TruncatedTableDraft",
    "ScheduledDraft",
    "build_draft",
    "SpeculativeDecodeEngine",
    "SpeculativeGenerateResult",
    "StreamingLine",
    "ObservationLog",
]
