"""The NOVA vector unit: comparators + line NoC + MAC lanes.

This is the unit that overlays an accelerator (one router per core /
MXU / convolution engine, ``n`` neurons per router) and replaces its
LUT-based vector unit for non-linear operations.

Two APIs:

* :meth:`NovaVectorUnit.approximate` — one lookup across all routers,
  cycle-accurate through the NoC, returning outputs **bit-exact** against
  the :class:`~repro.approx.quantize.QuantizedPwl` golden model (this is
  the property the functional-verification tests pin down, standing in
  for the paper's Synopsys VCS verification).
* :meth:`NovaVectorUnit.run_stream` — a pipelined stream of lookups (one
  batch of PE outputs per PE cycle), reporting total PE cycles, per-batch
  latency and the event counters the energy model consumes.  Fault-free
  streams are evaluated by a whole-stream vectorised gather whose outputs
  and counter totals are exact against the beat-level simulation
  (``simulate=True`` forces the cycle-by-cycle path).

Throughput: one approximation per neuron per PE cycle once the 2-stage
pipeline (fetch, MAC) is full — identical to the LUT baseline, which is
why the paper compares the two at equal latency and puts the entire
difference in area/power.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from numbers import Integral
from typing import TYPE_CHECKING

import numpy as np

from repro.approx.quantize import QuantizedPwl, pack_beats
from repro.core.comparator import ComparatorBank
from repro.core.config import NovaConfig, preset, warn_legacy_kwargs
from repro.core.kernels import KernelBackend, resolve_backend
from repro.core.mac import MacLane
from repro.core.mapper import BroadcastSchedule, NovaMapper
from repro.core.noc import NovaNoc
from repro.noc.link import RepeatedWire
from repro.noc.stats import EventCounters
from repro.noc.topology import LineTopology

if TYPE_CHECKING:
    from repro.noc.faults import LinkFault

__all__ = ["NovaVectorUnit", "ApproximationResult", "StreamResult"]


@dataclass(frozen=True)
class ApproximationResult:
    """One batch through the unit.

    ``outputs`` has shape ``(n_routers, n_neurons)``; latency is in PE
    cycles (fetch + MAC); ``noc_cycles`` is the broadcast duration.
    """

    outputs: np.ndarray
    latency_pe_cycles: int
    noc_cycles: int
    counters: EventCounters


@dataclass(frozen=True)
class FaultedResult:
    """Outcome of a fault-injected batch.

    ``corrupted_lanes`` marks every lane whose output differs from the
    fault-free golden model (including uncaptured lanes).
    """

    outputs: np.ndarray
    captured: np.ndarray
    corrupted_lanes: np.ndarray
    golden: np.ndarray

    @property
    def n_corrupted(self) -> int:
        """Number of lanes the fault actually disturbed."""
        return int(np.count_nonzero(self.corrupted_lanes))


@dataclass(frozen=True)
class StreamResult:
    """A pipelined stream of ``n_batches`` batches.

    ``total_pe_cycles`` counts from the first batch entering the
    comparators to the last MAC retiring; at the paper's operating point
    it equals ``n_batches + 1`` (two-stage pipeline).
    """

    outputs: np.ndarray  # (n_batches, n_routers, n_neurons)
    total_pe_cycles: int
    batch_latency_pe_cycles: int
    counters: EventCounters
    #: Per-lane lookup addresses (segment indices), same shape as
    #: ``outputs``.  Filled on both paths: the vectorised kernel returns
    #: them as a free by-product of the whole-stream gather, and the
    #: cycle-simulated path re-derives them through the pure golden
    #: table (bit-identical, no extra counter charges) so consumers and
    #: the backend-equivalence tests never have to branch on the path.
    addresses: np.ndarray | None = None


class NovaVectorUnit:
    """A configured NOVA overlay instance.

    The primary constructor interface is a table plus a
    :class:`~repro.core.config.NovaConfig` (or a preset name)::

        NovaVectorUnit(table, NovaConfig(n_routers=8, neurons_per_router=128))
        NovaVectorUnit(table, "tpu-v4")

    The legacy loose geometry kwargs (``n_routers``,
    ``neurons_per_router``, ``pe_frequency_ghz``, ``hop_mm`` — with
    ``hop_mm`` defaulting to 1.0 as it always has on this constructor)
    still build the identical unit but emit a ``DeprecationWarning``.
    The unit only consumes the config's geometry: the table itself fixes
    the segment count, so ``config.n_segments``/``config.seed`` are
    recorded on :attr:`config` for provenance, not re-derived.
    """

    def __init__(
        self,
        table: QuantizedPwl,
        config: NovaConfig | str | int | None = None,
        neurons_per_router: int | None = None,
        pe_frequency_ghz: float | None = None,
        hop_mm: float | None = None,
        wire: RepeatedWire | None = None,
        grid_shape: tuple[int, int] | None = None,
        *,
        n_routers: int | None = None,
    ) -> None:
        if isinstance(config, str):
            config = preset(config)
        if isinstance(config, NovaConfig):
            extra = [
                name
                for name, value in (
                    ("n_routers", n_routers),
                    ("neurons_per_router", neurons_per_router),
                    ("pe_frequency_ghz", pe_frequency_ghz),
                    ("hop_mm", hop_mm),
                )
                if value is not None
            ]
            if extra:
                raise TypeError(
                    "NovaVectorUnit: pass geometry either as a NovaConfig "
                    f"or as legacy kwargs, not both (got config plus {extra})"
                )
            config = dataclasses.replace(config, n_segments=table.n_segments)
        else:
            if config is not None:
                # legacy positional call: the second argument is n_routers
                if not isinstance(config, Integral):
                    raise TypeError(
                        "config must be a NovaConfig, a preset name or the "
                        f"legacy n_routers int, got {type(config).__name__}"
                    )
                if n_routers is not None:
                    raise TypeError("NovaVectorUnit got n_routers twice")
                n_routers = int(config)
            if (
                n_routers is None
                or neurons_per_router is None
                or pe_frequency_ghz is None
            ):
                raise TypeError(
                    "NovaVectorUnit needs a NovaConfig (or the legacy "
                    "n_routers, neurons_per_router and pe_frequency_ghz "
                    "kwargs)"
                )
            warn_legacy_kwargs("NovaVectorUnit")
            config = NovaConfig(
                n_routers=n_routers,
                neurons_per_router=neurons_per_router,
                pe_frequency_ghz=pe_frequency_ghz,
                hop_mm=1.0 if hop_mm is None else hop_mm,
                n_segments=table.n_segments,
            )
        self.config = config
        self.table = table
        self.neurons_per_router = config.neurons_per_router
        self.pe_frequency_ghz = config.pe_frequency_ghz
        self.hop_mm = config.hop_mm
        self.mapper = NovaMapper(wire=wire)
        self.schedule: BroadcastSchedule = self.mapper.schedule(
            n_routers=config.n_routers,
            pe_frequency_ghz=config.pe_frequency_ghz,
            n_pairs=table.n_segments,
            hop_mm=config.hop_mm,
        )
        self.topology = LineTopology(
            n_routers=config.n_routers,
            hop_mm=config.hop_mm,
            grid_shape=grid_shape,
        )
        self.noc = NovaNoc(
            topology=self.topology,
            schedule=self.schedule,
            neurons_per_router=config.neurons_per_router,
        )
        self.comparators = [
            ComparatorBank(table=table, n_neurons=config.neurons_per_router)
            for _ in range(config.n_routers)
        ]
        self.macs = [
            MacLane(
                n_neurons=config.neurons_per_router,
                output_format=table.output_format,
            )
            for _ in range(config.n_routers)
        ]
        self.beats = pack_beats(table)
        self.backend: KernelBackend = resolve_backend(config.kernel_backend)

    @property
    def n_routers(self) -> int:
        """Routers (= accelerator cores) served by this unit."""
        return self.topology.n_routers

    def retarget(self, table: QuantizedPwl) -> None:
        """Switch the active function table in place.

        On NOVA the table is broadcast content, not stored state — the
        paper's table switching is free — so retargeting the overlay to a
        different function only swaps what the mapper feeds onto the
        wires: the serialised beats, the comparator cut points and the
        MAC output format.  The physical unit (routers, repeaters,
        comparator banks, MAC lanes) and all lifetime event counters are
        untouched; if the new table's segment count changes the beat
        count, the broadcast schedule is re-derived and the buffering
        switches are re-programmed, exactly as the runtime mapper would.
        """
        if table.n_segments != self.table.n_segments:
            schedule = self.mapper.schedule(
                n_routers=self.n_routers,
                pe_frequency_ghz=self.pe_frequency_ghz,
                n_pairs=table.n_segments,
                hop_mm=self.hop_mm,
            )
            self.schedule = schedule
            self.noc.schedule = schedule
            buffering = set(schedule.buffering_routers)
            for router in self.noc.routers:
                router.set_buffering(router.router_id in buffering)
        self.table = table
        self.config = dataclasses.replace(
            self.config, n_segments=table.n_segments
        )
        self.beats = pack_beats(table)
        for bank in self.comparators:
            bank.table = table
        for mac in self.macs:
            mac.output_format = table.output_format

    def _check_input(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        expected = (self.n_routers, self.neurons_per_router)
        if x.shape != expected:
            raise ValueError(f"expected input shape {expected}, got {x.shape}")
        return x

    def approximate(self, x: np.ndarray) -> ApproximationResult:
        """Run one batch of PE outputs through the full pipeline."""
        x = self._check_input(x)
        addresses = np.stack(
            [
                self.comparators[r].lookup_addresses(x[r])
                for r in range(self.n_routers)
            ]
        )
        result = self.noc.broadcast(self.beats, addresses)
        coeff_scale = self.table.coeff_format.scale
        xq = self.table.input_format.quantize(
            self.table.quantized_pwl.clamp(x)
        )
        outputs = np.stack(
            [
                self.macs[r].approximate(
                    result.slopes_raw[r] * coeff_scale,
                    xq[r],
                    result.biases_raw[r] * coeff_scale,
                )
                for r in range(self.n_routers)
            ]
        )
        lanes = self.n_routers * self.neurons_per_router
        counters = result.counters.merge(
            EventCounters(counts={"comparator_eval": lanes, "mac_op": lanes})
        )
        return ApproximationResult(
            outputs=outputs,
            latency_pe_cycles=self.schedule.total_latency_pe_cycles,
            noc_cycles=result.noc_cycles,
            counters=counters,
        )

    def run_stream(self, xs: np.ndarray, simulate: bool = False) -> StreamResult:
        """Run a pipelined stream of batches (one per PE cycle).

        ``xs`` has shape ``(n_batches, n_routers, n_neurons)``.  The fetch
        of batch ``t + 1`` overlaps the MAC of batch ``t``, so total time
        is ``n_batches - 1 + total_latency_pe_cycles`` PE cycles.

        By default the stream takes the vectorised path: one whole-stream
        segment-index gather through the golden table computes every
        output at once, and event counters are charged in closed form.
        Both are exact — the outputs are bit-identical to the beat-level
        simulation (the property the functional-verification tests pin
        down) and the counter totals equal what per-cycle simulation
        accumulates, including the address-dependent ``tag_match`` count.
        Pass ``simulate=True`` to drive every batch through the
        cycle-level NoC model instead (the reference path, and the one
        the fault-injection machinery extends).
        """
        xs = np.asarray(xs, dtype=np.float64)
        if xs.ndim != 3:
            raise ValueError(
                f"expected (n_batches, n_routers, n_neurons), got shape {xs.shape}"
            )
        n_batches = xs.shape[0]
        if n_batches < 1:
            raise ValueError("need at least one batch")
        expected = (self.n_routers, self.neurons_per_router)
        if xs.shape[1:] != expected:
            raise ValueError(
                f"expected batch shape {expected}, got {xs.shape[1:]}"
            )
        before = self._lifetime_counters()
        if simulate:
            outputs = np.zeros_like(xs)
            for t in range(n_batches):
                outputs[t] = self.approximate(xs[t]).outputs
            # Re-derive the addresses through the pure golden table:
            # bit-identical to what the comparators computed beat by
            # beat, with no extra counter charges (the simulation above
            # already accounted every comparator_eval).
            addresses = self.table.segment_index(xs)
        else:
            outputs, addresses = self._stream_vectorized(xs)
        counters = self._lifetime_counters().diff(before)
        latency = self.schedule.total_latency_pe_cycles
        return StreamResult(
            outputs=outputs,
            total_pe_cycles=n_batches - 1 + latency,
            batch_latency_pe_cycles=latency,
            counters=counters,
            addresses=addresses,
        )

    def _stream_vectorized(
        self, xs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Whole-stream gather with closed-form event accounting.

        Per lookup, a lane whose address selects beat ``b`` performs one
        tag comparison on each of beats ``0..b`` (it stays pending until
        its beat arrives, and beats arrive in tag order), so its exact
        ``tag_match`` contribution is ``(address & (n_beats - 1)) + 1``.
        Everything else is address-independent per broadcast.

        The gather/MAC itself and the tag-match reduction run on the
        configured :class:`~repro.core.kernels.KernelBackend`; counter
        charging stays here with the unit that owns the counters
        (NV006/NV009) — backends are pure array transformers.
        """
        n_batches, n_routers, n_neurons = xs.shape
        outputs, idx = self.backend.table_gather_mac(self.table, xs)
        per_router = n_batches * n_neurons
        for bank in self.comparators:
            bank.counters.add("comparator_eval", per_router)
        for mac in self.macs:
            mac.counters.add("mac_op", per_router)
        tag_matches = np.asarray(
            self.backend.tag_match_totals(idx, self.schedule.n_beats)
        )
        pair_captures = np.full(n_routers, per_router, dtype=np.int64)
        self.noc.charge_broadcasts(n_batches, tag_matches, pair_captures)
        return outputs, idx

    def golden_reference(self, x: np.ndarray) -> np.ndarray:
        """The bit-exact functional model the hardware must match."""
        x = self._check_input(x)
        return self.table.evaluate(x)

    def approximate_with_fault(
        self, x: np.ndarray, fault: "LinkFault"
    ) -> "FaultedResult":
        """One batch with a single-bit link fault injected.

        ``fault`` is a :class:`repro.noc.faults.LinkFault`.  Returns the
        (possibly corrupted) outputs plus the mask of lanes whose tag
        match fired; uncaptured lanes carry a zero coefficient (slope 0,
        bias 0 -> output 0), the natural hardware default.
        """
        x = self._check_input(x)
        addresses = np.stack(
            [
                self.comparators[r].lookup_addresses(x[r])
                for r in range(self.n_routers)
            ]
        )
        result = self.noc.broadcast(self.beats, addresses, fault=fault)
        coeff_scale = self.table.coeff_format.scale
        xq = self.table.input_format.quantize(
            self.table.quantized_pwl.clamp(x)
        )
        outputs = np.stack(
            [
                self.macs[r].approximate(
                    result.slopes_raw[r] * coeff_scale,
                    xq[r],
                    result.biases_raw[r] * coeff_scale,
                )
                for r in range(self.n_routers)
            ]
        )
        captured = (
            result.captured
            if result.captured is not None
            else np.ones_like(outputs, dtype=bool)
        )
        golden = self.table.evaluate(x)
        corrupted = (outputs != golden) | ~captured
        return FaultedResult(
            outputs=outputs,
            captured=captured,
            corrupted_lanes=corrupted,
            golden=golden,
        )

    def _lifetime_counters(self) -> EventCounters:
        merged = self.noc.merged_counters()
        for bank in self.comparators:
            merged = merged.merge(bank.counters)
        for mac in self.macs:
            merged = merged.merge(mac.counters)
        return merged
