"""CycleEngine-based streaming testbench for the NOVA NoC.

:class:`~repro.core.noc.NovaNoc` computes beat arrival times analytically
(``arrival_cycle``).  This module re-derives those times *structurally*:
it builds the line from :class:`~repro.noc.router.BufferedInputPort`
primitives, clocks them with the two-phase
:class:`~repro.noc.engine.CycleEngine`, and observes when each router
actually sees each beat.  The equivalence test between the two models is
the repository's analogue of checking an RTL implementation against its
timing spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.approx.quantize import LinkBeat
from repro.core.mapper import BroadcastSchedule
from repro.noc.engine import ClockDomain, CycleEngine, Tickable
from repro.noc.packet import BroadcastFlit
from repro.noc.router import BufferedInputPort, PortState

__all__ = ["StreamingLine", "ObservationLog"]


@dataclass(frozen=True)
class ObservationLog:
    """(router_id, beat_index, noc_cycle) triples, in observation order."""

    observations: tuple[tuple[int, int, int], ...]

    def arrival_cycle(self, router_id: int, beat_index: int) -> int:
        """First cycle at which ``router_id`` observed ``beat_index``."""
        for rid, bid, cycle in self.observations:
            if rid == router_id and bid == beat_index:
                return cycle
        raise KeyError(
            f"router {router_id} never observed beat {beat_index}"
        )


class _LineStage(Tickable):
    """One repeater segment of the line: a buffered port plus the set of
    routers the wave covers combinationally behind it."""

    def __init__(self, routers: list[int], buffered: bool) -> None:
        self.routers = routers
        self.port = BufferedInputPort(
            state=PortState.BUFFER if buffered else PortState.FORWARD
        )
        self.log: list[tuple[int, int, int]] = []
        self.downstream: "_LineStage | None" = None
        self._forwarding: BroadcastFlit | None = None

    def tick(self, local_cycle: int) -> None:
        flit = self.port.visible()
        if flit is None:
            self._forwarding = None
            return
        for router_id in self.routers:
            self.log.append((router_id, flit.beat_index, local_cycle))
        self._forwarding = flit

    def commit(self, local_cycle: int) -> None:
        if self.downstream is not None:
            self.downstream.port.accept(self._forwarding)
        self.port.commit()


class _BeatSource(Tickable):
    """Injects one beat per NoC cycle into the head stage."""

    def __init__(self, beats: list[LinkBeat], head: _LineStage) -> None:
        self.beats = beats
        self.head = head
        self._next = 0

    def tick(self, local_cycle: int) -> None:
        if self._next < len(self.beats):
            flit = BroadcastFlit(
                payload=self.beats[self._next],
                source=0,
                injected_cycle=local_cycle,
                broadcast_id=0,
                beat_index=self._next,
            )
            # combinational injection: the head stage sees it this cycle
            self.head.port.accept(flit)
            self._next += 1
        else:
            self.head.port.accept(None)

    def commit(self, local_cycle: int) -> None:
        pass


@dataclass
class StreamingLine:
    """A structurally-clocked model of one broadcast over the line."""

    schedule: BroadcastSchedule
    stages: list[_LineStage] = field(init=False)

    def __post_init__(self) -> None:
        hops = self.schedule.max_hops_per_cycle
        n = self.schedule.n_routers
        self.stages = []
        for start in range(0, n, hops):
            routers = list(range(start, min(start + hops, n)))
            # the head stage forwards combinationally from the source;
            # every later stage is a buffering segment boundary
            self.stages.append(_LineStage(routers, buffered=start > 0))
        for upstream, downstream in zip(self.stages, self.stages[1:]):
            upstream.downstream = downstream

    def run(self, beats: list[LinkBeat]) -> ObservationLog:
        """Clock the line until every beat has reached the tail stage."""
        if len(beats) != self.schedule.n_beats:
            raise ValueError(
                f"expected {self.schedule.n_beats} beats, got {len(beats)}"
            )
        engine = CycleEngine()
        noc_domain = ClockDomain("noc", period=1)
        source = _BeatSource(beats, self.stages[0])
        engine.add(noc_domain, source)
        for stage in self.stages:
            engine.add(noc_domain, stage)
        total_cycles = self.schedule.n_beats + len(self.stages) - 1
        engine.run(total_cycles)
        observations: list[tuple[int, int, int]] = []
        for stage in self.stages:
            observations.extend(stage.log)
        observations.sort(key=lambda t: (t[2], t[0], t[1]))
        return ObservationLog(observations=tuple(observations))
