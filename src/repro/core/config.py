"""Typed NOVA geometry: one configuration object for every engine.

The paper's Table II defines NOVA as a handful of *named* geometries —
routers x lanes, PE frequency, router pitch — attached to different host
accelerators.  :class:`NovaConfig` makes that geometry a first-class,
serializable artifact instead of six loose kwargs repeated at every
engine constructor:

* **One schema.**  ``n_routers``, ``neurons_per_router``,
  ``pe_frequency_ghz``, ``hop_mm`` (the overlay geometry) plus
  ``n_segments`` and ``seed`` (the compile-time table parameters), all
  validated at construction.
* **Named presets.**  :data:`PRESETS` carries the Table II
  configurations (``"jetson-nx"``, ``"react"``, ``"tpu-v3"``,
  ``"tpu-v4"``), each paired with its host accelerator so
  :meth:`NovaConfig.build_host` can instantiate the matching
  :class:`~repro.accelerators.base.HostAccelerator`.
* **Round-trip serialization.**  :meth:`NovaConfig.to_dict` /
  :meth:`from_dict` (and the JSON twins) let experiment manifests, CLI
  overrides and future multi-geometry fleets treat a geometry as data.

Engines (:class:`~repro.core.vector_unit.NovaVectorUnit`,
:class:`~repro.core.attention.NovaAttentionEngine`,
:class:`~repro.core.batched_attention.BatchedNovaAttentionEngine`)
accept a ``NovaConfig`` — or a preset name — as their primary
constructor interface; the legacy geometry kwargs still work through a
``DeprecationWarning`` shim that builds the identical engine.  The
recommended front door for running anything is
:class:`~repro.core.session.NovaSession`.
"""

from __future__ import annotations

import dataclasses
import json
import warnings
from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass
from numbers import Integral, Real
from typing import TYPE_CHECKING, Any, cast

if TYPE_CHECKING:
    from repro.accelerators import HostAccelerator
    from repro.approx.quantize import QuantizedPwl
    from repro.core.mapper import BroadcastSchedule
    from repro.eval.paper_data import AcceleratorConfig

__all__ = [
    "NovaConfig",
    "PRESETS",
    "preset",
    "as_config",
    "resolve_engine_config",
    "GEOMETRY_FIELDS",
    "ENGINE_FIELDS",
    "DRAFT_KINDS",
    "KERNEL_BACKENDS",
    "parse_tree_spec",
]

#: The draft models :func:`repro.core.speculative.build_draft` knows how
#: to construct from a configuration (``NovaConfig.draft_kind``).  The
#: canonical tuple lives here rather than in :mod:`repro.core.speculative`
#: so config validation needs no import of the engine stack.
DRAFT_KINDS = ("truncated-table", "ngram")

#: The execution backends :func:`repro.core.kernels.resolve_backend`
#: knows how to build (``NovaConfig.kernel_backend``).  As with
#: :data:`DRAFT_KINDS`, the canonical tuple lives here so config
#: validation needs no import of the kernel stack; a test pins it equal
#: to :data:`repro.core.kernels.BACKENDS`.  ``numba``/``jax`` are
#: optional dependencies — naming one where it is not installed warns
#: and runs on ``numpy`` instead.
KERNEL_BACKENDS = ("numpy", "loopback", "numba", "jax")

#: The overlay-geometry fields (what a :class:`NovaVectorUnit` needs).
GEOMETRY_FIELDS = (
    "n_routers", "neurons_per_router", "pe_frequency_ghz", "hop_mm",
)

#: Geometry plus the compile-time table parameters (what the attention
#: engines need).
ENGINE_FIELDS = GEOMETRY_FIELDS + ("n_segments", "seed")

#: Fields an override string may set, with their value parsers.
_FIELD_PARSERS: dict[str, Callable[[str], object]] = {
    "n_routers": int,
    "neurons_per_router": int,
    "pe_frequency_ghz": float,
    "hop_mm": float,
    "n_segments": int,
    "seed": int,
    "kv_block_size": int,
    "spec_k": int,
    "spec_tree": lambda s: None if s.lower() in ("", "none", "null") else s,
    "draft_kind": str,
    "enable_prefix_caching": lambda s: _parse_bool(
        "enable_prefix_caching", s
    ),
    "kernel_backend": str,
    "host": lambda s: None if s.lower() in ("", "none", "null") else s,
}


#: Safety cap on draft-tree size: the sum of nodes over every level of a
#: ``spec_tree`` may not exceed this (a runaway ``"4x8"`` would plan
#: 87k provisional tokens per pass).  Far above any tree that pays off.
MAX_TREE_NODES = 256


def parse_tree_spec(spec: str) -> tuple[int, ...]:
    """Parse a draft-tree spec into per-level branching widths.

    The spec is comma-separated ``WIDTHxCOUNT`` segments (a bare
    ``WIDTH`` means ``WIDTHx1``): ``"2x2"`` branches twice at width 2,
    ``"1x4"`` is a linear chain of four drafts (the degenerate tree —
    exactly ``spec_k=4``), ``"3,1x3"`` tries three alternatives for the
    first draft and extends each survivor linearly for three more.
    Level ``i`` of the returned tuple is how many alternative drafts
    every surviving branch proposes at depth ``i + 1``.  The full tree
    (every level's node count is the product of the widths so far) is
    capped at :data:`MAX_TREE_NODES` nodes.
    """
    if not isinstance(spec, str):
        raise TypeError(
            f"tree spec must be a str, got {type(spec).__name__}"
        )
    widths: list[int] = []
    for segment in spec.split(","):
        segment = segment.strip()
        if not segment:
            raise ValueError(
                f"empty segment in tree spec {spec!r}; expected "
                "comma-separated WIDTHxCOUNT segments like '2x2,1x4'"
            )
        width_text, sep, count_text = segment.partition("x")
        try:
            if sep and not count_text:
                raise ValueError(segment)
            width = int(width_text)
            count = int(count_text) if count_text else 1
        except ValueError:
            raise ValueError(
                f"malformed tree-spec segment {segment!r} in {spec!r}; "
                "expected WIDTHxCOUNT (e.g. '2x2') or a bare WIDTH"
            ) from None
        if width < 1 or count < 1:
            raise ValueError(
                f"tree-spec widths and counts must be >= 1, got "
                f"{segment!r} in {spec!r}"
            )
        widths.extend([width] * count)
    if not widths:
        raise ValueError("tree spec must name at least one level")
    nodes = 0
    level = 1
    for width in widths:
        level *= width
        nodes += level
        if nodes > MAX_TREE_NODES:
            raise ValueError(
                f"tree spec {spec!r} plans more than {MAX_TREE_NODES} "
                "nodes; use narrower widths or fewer levels"
            )
    return tuple(widths)


def _parse_bool(name: str, text: str) -> bool:
    """An override-string boolean (``1/true/yes/on`` / ``0/false/no/off``)."""
    lowered = text.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ValueError(
        f"{name} must be a boolean (1/true/yes/on or 0/false/no/off), "
        f"got {text!r}"
    )


@dataclass(frozen=True)
class NovaConfig:
    """One NOVA overlay configuration (a Table II row, as data).

    Defaults are the TPU v4-like operating point (8 routers x 128
    lanes at 1.4 GHz, 0.5 mm pitch, 16-segment tables) — the same
    defaults the engines have always had.

    ``host`` optionally names the Table II host accelerator the geometry
    belongs to (a :func:`repro.accelerators.build_accelerator` key);
    :meth:`build_host` instantiates it.  ``seed`` seeds the compile-time
    MLP table training; units built from an explicit, pre-compiled table
    ignore it.  ``kv_block_size`` is the decode memory layer's paged-KV
    granularity — tokens per :class:`repro.core.paging.BlockPool` block
    (presets size it to their on-chip memory: small hosts get small
    blocks so short requests waste fewer slots, large hosts amortise
    block-table overhead with bigger blocks).  It never affects
    numerics, cycles or counters — only where K/V rows live.

    ``spec_k`` / ``spec_tree`` / ``draft_kind`` are the
    speculative-decode defaults (:mod:`repro.core.speculative`): how
    many draft tokens one verification pass may carry (``spec_k >= 1``;
    wider overlays amortise deeper speculation), an optional draft
    *tree* spec (:func:`parse_tree_spec` syntax, e.g. ``"2x2,1x4"``)
    that scores several alternative drafts per depth in the same packed
    pass (``None`` keeps the linear ``spec_k`` chain), and which
    :data:`DRAFT_KINDS` entry builds the default draft model.  Like
    ``kv_block_size``, they never change what tokens are generated —
    speculative decode is bit-exact against plain decode by
    construction — only how many overlay passes it takes to generate
    them.

    ``enable_prefix_caching`` is the paged serving stack's default for
    sharing already-cached prompt blocks between requests
    (:mod:`repro.core.paging`; schedulers and the front door can
    override it per run).  Off by default; like the other serving
    knobs it is purely a memory-residency lever — outputs, cycles and
    counters are bit-identical either way.

    ``kernel_backend`` selects the :data:`KERNEL_BACKENDS` entry that
    executes the whole-batch gather/MAC primitives
    (:mod:`repro.core.kernels`).  Every backend is bit/cycle/counter
    exact against the beat-level simulation, so like the serving knobs
    it is purely an execution-speed lever; ``"numpy"`` is the default
    everywhere, ``"loopback"`` pins the pre-kernel per-token loop for
    benchmarking, and ``"numba"``/``"jax"`` are optional accelerated
    drop-ins that fall back to numpy (with a warning) when the package
    is absent.
    """

    n_routers: int = 8
    neurons_per_router: int = 128
    pe_frequency_ghz: float = 1.4
    hop_mm: float = 0.5
    n_segments: int = 16
    seed: int = 0
    kv_block_size: int = 16
    spec_k: int = 4
    spec_tree: str | None = None
    draft_kind: str = "truncated-table"
    enable_prefix_caching: bool = False
    kernel_backend: str = "numpy"
    host: str | None = None

    def __post_init__(self) -> None:
        for name in ("n_routers", "neurons_per_router", "n_segments",
                     "kv_block_size", "spec_k"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, Integral):
                raise TypeError(
                    f"{name} must be an int, got {type(value).__name__}"
                )
            object.__setattr__(self, name, int(value))
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")
        if isinstance(self.seed, bool) or not isinstance(self.seed, Integral):
            raise TypeError(
                f"seed must be an int, got {type(self.seed).__name__}"
            )
        object.__setattr__(self, "seed", int(self.seed))
        if self.seed < 0:
            raise ValueError(f"seed must be >= 0, got {self.seed}")
        for name in ("pe_frequency_ghz", "hop_mm"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, Real):
                raise TypeError(
                    f"{name} must be a number, got {type(value).__name__}"
                )
            object.__setattr__(self, name, float(value))
            if getattr(self, name) <= 0.0:
                raise ValueError(f"{name} must be > 0, got {value}")
        if self.spec_tree is not None:
            parse_tree_spec(self.spec_tree)  # raises on a malformed spec
        if not isinstance(self.draft_kind, str):
            raise TypeError(
                "draft_kind must be a draft-model name (str), got "
                f"{type(self.draft_kind).__name__}"
            )
        if self.draft_kind not in DRAFT_KINDS:
            raise ValueError(
                f"unknown draft_kind {self.draft_kind!r}; "
                f"known: {sorted(DRAFT_KINDS)}"
            )
        if not isinstance(self.enable_prefix_caching, bool):
            raise TypeError(
                "enable_prefix_caching must be a bool, got "
                f"{type(self.enable_prefix_caching).__name__}"
            )
        if not isinstance(self.kernel_backend, str):
            raise TypeError(
                "kernel_backend must be a backend name (str), got "
                f"{type(self.kernel_backend).__name__}"
            )
        if self.kernel_backend not in KERNEL_BACKENDS:
            raise ValueError(
                f"unknown kernel_backend {self.kernel_backend!r}; "
                f"known: {sorted(KERNEL_BACKENDS)}"
            )
        if self.host is not None and not isinstance(self.host, str):
            raise TypeError(
                "host must be an accelerator name (str) or None, got "
                f"{type(self.host).__name__}"
            )

    # ------------------------------------------------------------------
    # Derived geometry.
    # ------------------------------------------------------------------

    @property
    def n_lanes(self) -> int:
        """Total approximator lanes (``routers x neurons``)."""
        return self.n_routers * self.neurons_per_router

    @property
    def lane_shape(self) -> tuple[int, int]:
        """The lane grid ``(n_routers, neurons_per_router)``."""
        return (self.n_routers, self.neurons_per_router)

    def schedule(self, n_pairs: int | None = None) -> "BroadcastSchedule":
        """The (cached) broadcast plan for this geometry.

        ``n_pairs`` defaults to ``n_segments``; the returned
        :class:`~repro.core.mapper.BroadcastSchedule` comes from the
        process-wide schedule cache, so identical geometries share one
        frozen object.
        """
        from repro.core.mapper import NovaMapper

        return NovaMapper().schedule(
            n_routers=self.n_routers,
            pe_frequency_ghz=self.pe_frequency_ghz,
            n_pairs=self.n_segments if n_pairs is None else n_pairs,
            hop_mm=self.hop_mm,
        )

    def table(self, function: str) -> "QuantizedPwl":
        """The compiled (process-wide cached) PWL table for ``function``."""
        from repro.approx.table_cache import compiled_table

        return compiled_table(
            function, n_segments=self.n_segments, seed=self.seed
        )

    def build_host(self) -> "HostAccelerator":
        """Instantiate this configuration's host accelerator.

        Raises ``ValueError`` when the configuration names no host.
        """
        if self.host is None:
            raise ValueError(
                "this NovaConfig names no host accelerator; set host= to a "
                "repro.accelerators.build_accelerator key"
            )
        from repro.accelerators import build_accelerator

        return build_accelerator(self.host)

    # ------------------------------------------------------------------
    # Serialization and derivation.
    # ------------------------------------------------------------------

    def replace(self, **changes: object) -> "NovaConfig":
        """A copy with ``changes`` applied (validation re-runs)."""
        return dataclasses.replace(self, **cast("dict[str, Any]", changes))

    def to_dict(self) -> dict[str, object]:
        """A plain-JSON-types dict holding every field."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "NovaConfig":
        """Inverse of :meth:`to_dict`; unknown keys are an error."""
        field_names = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - field_names)
        if unknown:
            raise ValueError(
                f"unknown NovaConfig field(s) {unknown}; "
                f"known: {sorted(field_names)}"
            )
        return cls(**cast("dict[str, Any]", dict(data)))

    def to_json(self) -> str:
        """JSON form of :meth:`to_dict` (stable key order)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "NovaConfig":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def with_overrides(
        self, overrides: Iterable[str] | Mapping[str, object]
    ) -> "NovaConfig":
        """Apply ``FIELD=VALUE`` override strings (the CLI's ``--override``).

        ``overrides`` is either a mapping of field name to value or an
        iterable of ``"field=value"`` strings; values are parsed to the
        field's type (``"none"`` clears ``host``).
        """
        if isinstance(overrides, Mapping):
            items = list(overrides.items())
        else:
            items = []
            for text in overrides:
                key, sep, raw = str(text).partition("=")
                if not sep or not key:
                    raise ValueError(
                        f"override {text!r} is not of the form FIELD=VALUE"
                    )
                items.append((key.strip(), raw.strip()))
        changes: dict[str, object] = {}
        for key, raw in items:
            parser = _FIELD_PARSERS.get(key)
            if parser is None:
                raise ValueError(
                    f"unknown NovaConfig field {key!r}; "
                    f"known: {sorted(_FIELD_PARSERS)}"
                )
            try:
                changes[key] = parser(raw) if isinstance(raw, str) else raw
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    f"bad value {raw!r} for NovaConfig field {key!r}: {exc}"
                ) from None
        return self.replace(**changes)

    @classmethod
    def from_accelerator(
        cls,
        accelerator: "AcceleratorConfig",
        n_segments: int = 16,
        seed: int = 0,
    ) -> "NovaConfig":
        """Geometry of one Table II row
        (:class:`repro.eval.paper_data.AcceleratorConfig`)."""
        return cls(
            n_routers=accelerator.n_routers,
            neurons_per_router=accelerator.neurons_per_router,
            pe_frequency_ghz=accelerator.frequency_ghz,
            hop_mm=accelerator.hop_mm,
            n_segments=n_segments,
            seed=seed,
            host=accelerator.name,
        )


#: The Table II geometries by preset name.  Numbers mirror
#: :data:`repro.eval.paper_data.TABLE2_CONFIGS` (a test pins the two in
#: sync); ``host`` links each preset to its accelerator factory.
PRESETS: dict[str, NovaConfig] = {
    "jetson-nx": NovaConfig(
        n_routers=2, neurons_per_router=16, pe_frequency_ghz=1.4,
        hop_mm=0.5, kv_block_size=16, spec_k=4, host="Jetson Xavier NX",
    ),
    "react": NovaConfig(
        n_routers=10, neurons_per_router=256, pe_frequency_ghz=0.24,
        hop_mm=1.0, kv_block_size=64, spec_k=8, host="REACT",
    ),
    "tpu-v3": NovaConfig(
        n_routers=4, neurons_per_router=128, pe_frequency_ghz=1.4,
        hop_mm=0.5, kv_block_size=32, spec_k=4, host="TPU v3-like",
    ),
    "tpu-v4": NovaConfig(
        n_routers=8, neurons_per_router=128, pe_frequency_ghz=1.4,
        hop_mm=0.5, kv_block_size=32, spec_k=8, host="TPU v4-like",
    ),
}


def preset(name: str) -> NovaConfig:
    """Look up a named Table II geometry from :data:`PRESETS`."""
    try:
        return PRESETS[name]
    except KeyError:
        available = ", ".join(sorted(PRESETS))
        raise KeyError(
            f"unknown geometry preset {name!r}; available: {available}"
        ) from None


def as_config(
    config: "NovaConfig | str | Mapping[str, object] | None",
) -> NovaConfig:
    """Coerce a config-ish value: ``None`` (defaults), a preset name,
    a mapping (:meth:`NovaConfig.from_dict`) or a ``NovaConfig``."""
    if config is None:
        return NovaConfig()
    if isinstance(config, NovaConfig):
        return config
    if isinstance(config, str):
        return preset(config)
    if isinstance(config, Mapping):
        return NovaConfig.from_dict(config)
    raise TypeError(
        "config must be a NovaConfig, a preset name, a mapping or None; "
        f"got {type(config).__name__}"
    )


def warn_legacy_kwargs(owner: str, stacklevel: int = 3) -> None:
    """Emit the one deprecation message for loose geometry kwargs."""
    warnings.warn(
        f"passing geometry kwargs to {owner} is deprecated; pass a "
        "NovaConfig (or a preset name such as 'jetson-nx') instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def resolve_engine_config(
    config: "NovaConfig | str | Mapping[str, object] | None",
    legacy: Mapping[str, object],
    owner: str,
) -> NovaConfig:
    """Shared constructor shim for the attention engines.

    ``legacy`` maps the old kwarg names to their passed values (``None``
    = not passed).  Passing both a config and legacy kwargs is an error;
    legacy kwargs alone emit a ``DeprecationWarning`` and build the
    identical :class:`NovaConfig` (missing kwargs take the config
    defaults, which equal the engines' historical defaults).
    """
    passed = {k: v for k, v in legacy.items() if v is not None}
    if config is not None:
        if passed:
            raise TypeError(
                f"{owner}: pass geometry either as config= or as legacy "
                f"kwargs, not both (got config plus {sorted(passed)})"
            )
        return as_config(config)
    if passed:
        warn_legacy_kwargs(owner, stacklevel=4)
        return NovaConfig(**cast("dict[str, Any]", passed))
    return NovaConfig()
