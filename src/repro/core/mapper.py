"""NOVA mapper: compile-time scheduling of the broadcast (paper §IV).

"The NOVA mapper schedules the cycle-by-cycle operation of NOVA NoC,
ensuring correct functionality of the lookup operation across the NoC...
Since NOVA's NoC broadcasts 8 pairs of slope and bias values in every
clock cycle, it takes multiple cycles for the higher number of breakpoints
... In order to keep the lookup latency to 1 cycle, NOVA's NoC runs at
higher clock frequency that is set by the mapper at runtime."

The mapper therefore decides, for a given table size and accelerator
configuration:

* the number of beats (``ceil(pairs / 8)`` rounded up to a power of two so
  the tag is a plain bit-field of the address),
* the NoC clock multiplier (equal to the beat count, so a full table
  broadcast fits in one PE cycle),
* whether the line can be traversed in a single NoC cycle at that clock
  (the SMART repeated-wire budget, §V-A: 10 routers at 1 mm pitch at
  1.5 GHz), and if not, which routers must buffer and how many extra
  cycles the traversal takes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.noc.link import RepeatedWire
from repro.utils.validation import check_positive

__all__ = ["BroadcastSchedule", "NovaMapper"]


@dataclass(frozen=True)
class BroadcastSchedule:
    """The mapper's output: the cycle-by-cycle broadcast plan.

    Attributes
    ----------
    n_pairs:
        Slope/bias pairs in the table (the paper's "breakpoints").
    n_beats:
        Link beats per broadcast (power of two).
    clock_multiplier:
        NoC clock frequency as a multiple of the PE clock (== n_beats).
    pe_frequency_ghz, noc_frequency_ghz:
        The two clock domains.
    n_routers:
        Routers on the line.
    max_hops_per_cycle:
        Routers a beat can ripple through in one NoC cycle at the NoC
        clock (from the repeated-wire model).
    traversal_segments:
        ``ceil(n_routers / max_hops_per_cycle)`` — 1 means single-cycle
        multi-hop broadcast, the paper's operating point.
    buffering_routers:
        Indices of routers whose east port latches (segment boundaries).
    noc_cycles_per_lookup:
        NoC cycles from first beat launch to the last router capturing the
        last beat: ``n_beats + traversal_segments - 1`` (beats pipeline
        behind one another).
    fetch_pe_cycles:
        The fetch stage's latency in PE cycles (1 at the paper's operating
        point).
    total_latency_pe_cycles:
        Fetch plus the MAC cycle — matches the LUT baseline's 2 cycles
        whenever the traversal is single-cycle.
    """

    n_pairs: int
    n_beats: int
    clock_multiplier: int
    pe_frequency_ghz: float
    noc_frequency_ghz: float
    n_routers: int
    max_hops_per_cycle: int
    traversal_segments: int
    buffering_routers: tuple[int, ...]
    noc_cycles_per_lookup: int
    fetch_pe_cycles: int
    total_latency_pe_cycles: int

    @property
    def single_cycle_broadcast(self) -> bool:
        """True when one beat reaches every router in one NoC cycle."""
        return self.traversal_segments == 1

    def broadcast_event_counts(self, n_broadcasts: int = 1) -> dict[str, int]:
        """Address-independent NoC events of ``n_broadcasts`` broadcasts.

        Per broadcast: one launch per beat, one wire hop per beat per
        router, and one register write per beat per segment boundary.
        This is the single source of truth for the deterministic part of
        the event model — the per-cycle simulator, the vectorised stream
        accounting and the serving engine's per-request closed form all
        consume it.
        """
        if n_broadcasts < 0:
            raise ValueError(f"n_broadcasts must be >= 0, got {n_broadcasts}")
        return {
            "beat_launch": self.n_beats * n_broadcasts,
            "wire_hop": self.n_beats * self.n_routers * n_broadcasts,
            "register_write": (
                self.n_beats * (self.traversal_segments - 1) * n_broadcasts
            ),
        }


#: Shared compile-time schedule cache.  A :class:`BroadcastSchedule` is a
#: frozen value object fully determined by the wire model and the
#: ``(n_routers, pe_frequency_ghz, n_pairs, hop_mm)`` geometry, so every
#: mapper in the process can hand out the same instance for the same key
#: (the serving engine constructs one vector unit per worker, all with
#: identical geometry).
_SCHEDULE_CACHE: dict[tuple, BroadcastSchedule] = {}
_SCHEDULE_LOCK = threading.Lock()


class NovaMapper:
    """Builds :class:`BroadcastSchedule` objects for a wire model.

    Schedules are cached process-wide: identical geometries on identical
    wire models reuse one frozen :class:`BroadcastSchedule` object rather
    than re-deriving (and re-allocating) the plan per engine.
    """

    def __init__(
        self, wire: RepeatedWire | None = None, pairs_per_beat: int = 8
    ) -> None:
        self.wire = wire if wire is not None else RepeatedWire()
        if pairs_per_beat < 1:
            raise ValueError(
                f"pairs_per_beat must be >= 1, got {pairs_per_beat}"
            )
        self.pairs_per_beat = pairs_per_beat

    @staticmethod
    def clear_schedule_cache() -> None:
        """Drop every cached schedule (test isolation hook)."""
        with _SCHEDULE_LOCK:
            _SCHEDULE_CACHE.clear()

    @staticmethod
    def schedule_cache_size() -> int:
        """Number of distinct geometries scheduled so far this process."""
        with _SCHEDULE_LOCK:
            return len(_SCHEDULE_CACHE)

    def n_beats_for(self, n_pairs: int) -> int:
        """Beats per broadcast: ceil(pairs/8) rounded up to a power of two.

        The power-of-two rounding keeps the tag a contiguous low bit-field
        of the lookup address (1 tag bit for 2 beats, as in the 257-bit
        link of Fig. 3).
        """
        if n_pairs < 1:
            raise ValueError(f"n_pairs must be >= 1, got {n_pairs}")
        needed = -(-n_pairs // self.pairs_per_beat)
        n_beats = 1
        while n_beats < needed:
            n_beats *= 2
        return n_beats

    def schedule(
        self,
        n_routers: int,
        pe_frequency_ghz: float,
        n_pairs: int = 16,
        hop_mm: float = 1.0,
    ) -> BroadcastSchedule:
        """Produce the broadcast plan for one accelerator configuration."""
        if n_routers < 1:
            raise ValueError(f"n_routers must be >= 1, got {n_routers}")
        check_positive("pe_frequency_ghz", pe_frequency_ghz)
        key = (
            self.wire, self.pairs_per_beat,
            n_routers, pe_frequency_ghz, n_pairs, hop_mm,
        )
        with _SCHEDULE_LOCK:
            cached = _SCHEDULE_CACHE.get(key)
        if cached is not None:
            return cached
        n_beats = self.n_beats_for(n_pairs)
        multiplier = n_beats
        noc_frequency = pe_frequency_ghz * multiplier
        max_hops = self.wire.max_hops_per_cycle(noc_frequency, hop_mm)
        if max_hops < 1:
            raise ValueError(
                f"NoC clock {noc_frequency:.3f} GHz is too fast for even one "
                f"{hop_mm} mm hop; the configuration is infeasible"
            )
        segments = -(-n_routers // max_hops)
        buffering = tuple(
            i for i in range(max_hops, n_routers, max_hops)
        )
        noc_cycles = n_beats + segments - 1
        fetch_pe_cycles = -(-noc_cycles // multiplier)
        schedule = BroadcastSchedule(
            n_pairs=n_pairs,
            n_beats=n_beats,
            clock_multiplier=multiplier,
            pe_frequency_ghz=pe_frequency_ghz,
            noc_frequency_ghz=noc_frequency,
            n_routers=n_routers,
            max_hops_per_cycle=max_hops,
            traversal_segments=segments,
            buffering_routers=buffering,
            noc_cycles_per_lookup=noc_cycles,
            fetch_pe_cycles=fetch_pe_cycles,
            total_latency_pe_cycles=fetch_pe_cycles + 1,
        )
        with _SCHEDULE_LOCK:
            # setdefault keeps the same-object guarantee when two threads
            # miss concurrently: the first insert wins, both callers get it
            return _SCHEDULE_CACHE.setdefault(key, schedule)

    def max_single_cycle_routers(
        self, pe_frequency_ghz: float, n_pairs: int = 16, hop_mm: float = 1.0
    ) -> int:
        """Longest line that still broadcasts in a single NoC cycle.

        Reproduces the paper's scalability claim: at a 1.5 GHz NoC clock
        and 1 mm hops the answer is 10 routers.
        """
        n_beats = self.n_beats_for(n_pairs)
        noc_frequency = pe_frequency_ghz * n_beats
        return self.wire.max_hops_per_cycle(noc_frequency, hop_mm)
