"""MAC lane: the final ``slope * x + bias`` stage.

"After each core fetches the respective slope and bias values, they are
sent to the MAC unit to perform the final approximation operation in the
next cycle" (paper §III-A).  The MAC operates in the PE clock domain at
one approximation per neuron per cycle; its datapath is the fixed-point
multiply-accumulate of :meth:`repro.utils.fixed_point.FixedPointFormat.mac`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.noc.stats import EventCounters
from repro.utils.fixed_point import FixedPointFormat, Q5_10

__all__ = ["MacLane"]


@dataclass
class MacLane:
    """A bank of per-neuron MACs sharing one output format."""

    n_neurons: int
    output_format: FixedPointFormat = Q5_10
    counters: EventCounters = field(default_factory=EventCounters)

    def __post_init__(self) -> None:
        if self.n_neurons < 1:
            raise ValueError(f"n_neurons must be >= 1, got {self.n_neurons}")

    def approximate(
        self, slopes: np.ndarray, x: np.ndarray, biases: np.ndarray
    ) -> np.ndarray:
        """One PE cycle of MAC operations: ``slopes * x + biases``.

        All arrays have shape ``(n_neurons,)``.  Counts one MAC op per
        neuron for the energy model.
        """
        slopes = np.asarray(slopes, dtype=np.float64)
        biases = np.asarray(biases, dtype=np.float64)
        x = np.asarray(x, dtype=np.float64)
        for name, arr in (("slopes", slopes), ("x", x), ("biases", biases)):
            if arr.shape != (self.n_neurons,):
                raise ValueError(
                    f"{name} must have shape ({self.n_neurons},), got {arr.shape}"
                )
        self.counters.add("mac_op", self.n_neurons)
        return self.output_format.mac(slopes, x, biases)
