"""NOVA router microarchitecture (paper Fig. 3).

Each router has two input and two output ports:

* **east input** — beats arriving from the neighbouring router, into a
  register bank (8 slope/bias pairs) with a bypass path;
* **local input** — the lookup addresses from the PE's comparator bank;
* **west output** — the asynchronous repeater towards the next router;
* **local output** — the captured (slope, bias) pairs for the MAC lane.

Per beat, the router matches the low bits of every pending lookup address
against the beat tag; on a match it captures the pair at slot
``address >> k`` (k = log2(number of beats)).  The router never arbitrates:
the line topology's fixed route reduces flow control to the buffer/forward
switch on the east port (paper §III-A.2).

Lookups are keyed by a *broadcast id* so the pipelined stream (one lookup
per PE cycle) stays correct even when the line is long enough that a
broadcast takes multiple NoC cycles to reach the tail: a router simply
matches each arriving beat against the lookup with the same id.  In the
paper's single-cycle configurations there is never more than one
outstanding lookup per router.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.approx.quantize import LinkBeat
from repro.noc.router import BufferedInputPort, PortState, RouterBase

__all__ = ["NovaRouter"]


@dataclass
class _LookupJob:
    """Capture state for one outstanding lookup on one router."""

    addresses: np.ndarray
    n_beats: int
    slopes_raw: np.ndarray
    biases_raw: np.ndarray
    captured: np.ndarray

    @property
    def complete(self) -> bool:
        return bool(np.all(self.captured))


@dataclass
class NovaRouter(RouterBase):
    """One router on the NOVA line."""

    n_neurons: int = 1
    east_port: BufferedInputPort = field(default_factory=BufferedInputPort)
    _jobs: dict[int, _LookupJob] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.n_neurons < 1:
            raise ValueError(f"n_neurons must be >= 1, got {self.n_neurons}")

    # ------------------------------------------------------------------
    # Local input port: lookup addresses from the comparators.
    # ------------------------------------------------------------------

    def begin_lookup(
        self, broadcast_id: int, addresses: np.ndarray, n_beats: int
    ) -> None:
        """Post one PE cycle's addresses and arm the capture logic."""
        addresses = np.asarray(addresses, dtype=np.int64)
        if addresses.shape != (self.n_neurons,):
            raise ValueError(
                f"expected {self.n_neurons} addresses, got shape {addresses.shape}"
            )
        if n_beats < 1 or (n_beats & (n_beats - 1)):
            raise ValueError(f"n_beats must be a power of two, got {n_beats}")
        if broadcast_id in self._jobs:
            raise RuntimeError(
                f"router {self.router_id}: broadcast id {broadcast_id} already active"
            )
        if np.any(addresses < 0) or np.any(addresses >= n_beats * 8):
            raise ValueError(
                "lookup addresses out of range for the broadcast table"
            )
        self._jobs[broadcast_id] = _LookupJob(
            addresses=addresses,
            n_beats=n_beats,
            slopes_raw=np.zeros(self.n_neurons, dtype=np.int64),
            biases_raw=np.zeros(self.n_neurons, dtype=np.int64),
            captured=np.zeros(self.n_neurons, dtype=bool),
        )

    # ------------------------------------------------------------------
    # East input port: one beat per NoC cycle.
    # ------------------------------------------------------------------

    def observe_beat(self, broadcast_id: int, beat: LinkBeat) -> None:
        """Tag-match one beat against the pending addresses of a lookup.

        Every pending (uncaptured) address performs a tag comparison each
        beat; the matching subset captures its slope/bias pair.  Event
        counts: one ``tag_match`` per pending address, one ``pair_capture``
        per matching address.
        """
        job = self._jobs.get(broadcast_id)
        if job is None:
            raise RuntimeError(
                f"router {self.router_id}: beat for unknown broadcast "
                f"{broadcast_id} (begin_lookup not called?)"
            )
        pending = ~job.captured
        self.counters.add("tag_match", int(np.count_nonzero(pending)))
        beat_sel = job.addresses & (job.n_beats - 1)
        matches = pending & (beat_sel == beat.tag)
        if not np.any(matches):
            return
        shift = (job.n_beats - 1).bit_length()
        slots = job.addresses[matches] >> shift
        pairs = np.asarray(beat.pairs, dtype=np.int64)  # (8, 2)
        job.slopes_raw[matches] = pairs[slots, 0]
        job.biases_raw[matches] = pairs[slots, 1]
        job.captured[matches] = True
        self.counters.add("pair_capture", int(np.count_nonzero(matches)))

    # ------------------------------------------------------------------
    # Local output port: captured pairs for the MAC lane.
    # ------------------------------------------------------------------

    def lookup_complete(self, broadcast_id: int) -> bool:
        """True once every address of ``broadcast_id`` captured its pair."""
        job = self._jobs.get(broadcast_id)
        return job is not None and job.complete

    def pop_pairs(self, broadcast_id: int) -> tuple[np.ndarray, np.ndarray]:
        """Retire a completed lookup, returning (slopes_raw, biases_raw)."""
        job = self._jobs.get(broadcast_id)
        if job is None or not job.complete:
            raise RuntimeError(
                f"router {self.router_id}: lookup {broadcast_id} not complete"
            )
        del self._jobs[broadcast_id]
        return job.slopes_raw, job.biases_raw

    def pop_pairs_forced(
        self, broadcast_id: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Retire a lookup even if incomplete (fault-injection path).

        Returns ``(slopes_raw, biases_raw, captured_mask)``; uncaptured
        lanes hold zeros and a False mask entry — the hardware analogue is
        a lane whose match never fired, which a deployed design would flag
        via a captured-valid bit exactly like this mask.
        """
        job = self._jobs.get(broadcast_id)
        if job is None:
            raise RuntimeError(
                f"router {self.router_id}: no lookup {broadcast_id}"
            )
        del self._jobs[broadcast_id]
        return job.slopes_raw, job.biases_raw, job.captured

    @property
    def outstanding_lookups(self) -> int:
        """Number of lookups currently armed on this router."""
        return len(self._jobs)

    # ------------------------------------------------------------------
    # Buffer/forward control (multi-cycle traversal support).
    # ------------------------------------------------------------------

    def set_buffering(self, buffering: bool) -> None:
        """Set the east-port register/bypass switch.

        The mapper marks every ``max_hops_per_cycle``-th router as a
        buffering router when the line is too long for single-cycle
        traversal; all other routers forward combinationally.
        """
        self.east_port.state = PortState.BUFFER if buffering else PortState.FORWARD

    @property
    def buffering(self) -> bool:
        """True when the east port latches rather than bypasses."""
        return self.east_port.state is PortState.BUFFER
