"""Comparator bank: PE outputs -> lookup addresses.

"The outputs from each PE are processed by the comparators to generate
lookup addresses, which are then sent to the corresponding NOVA router"
(paper §III-A.1).  One bank serves all the neurons mapped to a router; for
a ``B``-entry table it holds the ``B - 1`` quantised cut values and
produces, per neuron, the count of cuts <= x — the segment index.

The same comparator bank fronts the LUT baselines (Fig. 2's walkthrough
uses identical comparators to form LUT addresses), which is why the
comparator hardware cost appears in both NOVA and baseline totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.approx.quantize import QuantizedPwl
from repro.noc.stats import EventCounters

__all__ = ["ComparatorBank"]


@dataclass
class ComparatorBank:
    """Per-router comparator array holding the quantised cut points.

    Attributes
    ----------
    table:
        The quantised PWL table whose cuts are wired to the comparators.
    n_neurons:
        Number of PE output neurons this bank serves per PE cycle.
    """

    table: QuantizedPwl
    n_neurons: int
    counters: EventCounters = field(default_factory=EventCounters)

    def __post_init__(self) -> None:
        if self.n_neurons < 1:
            raise ValueError(f"n_neurons must be >= 1, got {self.n_neurons}")

    @property
    def n_comparators(self) -> int:
        """Comparators per neuron lane (one per interior cut)."""
        return self.table.n_segments - 1

    def lookup_addresses(self, x: np.ndarray) -> np.ndarray:
        """Generate lookup addresses for one PE cycle's neuron outputs.

        ``x`` has shape ``(n_neurons,)``; the result is the per-neuron
        segment index in ``[0, n_segments)``.  Each call counts one
        comparator-bank evaluation per neuron for the energy model.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_neurons,):
            raise ValueError(
                f"expected shape ({self.n_neurons},), got {x.shape}"
            )
        self.counters.add("comparator_eval", self.n_neurons)
        return self.table.segment_index(x)
