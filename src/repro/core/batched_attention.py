"""Batched attention serving: many requests through one shared overlay.

:class:`NovaAttentionEngine` is the cycle-accurate reference — one
request at a time, every query driven beat-by-beat through the NoC
model.  This module is the *serving* path the ROADMAP's north star asks
for: a batch of independent attention requests (variable sequence
length, shared overlay geometry) executed through **one** physical
:class:`~repro.core.vector_unit.NovaVectorUnit`, exactly as the paper
describes the hardware — a single overlay whose mapper feeds it
different tables per phase (table switching is free on NOVA; the table
lives on the wires).

Serving model
-------------
Three mechanisms make the batched path fast without changing a single
output bit or cycle count:

* **Lane packing.**  All requests' queries for one function are
  concatenated into a single lane stream, so the tail of request ``i``
  and the head of request ``i + 1`` share a PE cycle instead of each
  request padding its final batch with idle lanes.  The vector unit
  stays full between requests; only the final batch of the whole phase
  is padded.
* **Compiled-table cache.**  Tables come from the process-wide
  :mod:`repro.approx.table_cache`, keyed on
  ``(function, n_segments, seed)`` — training happens once per process,
  and every engine with the same key shares the same table object, which
  is what makes batched-vs-sequential comparisons bit-exact by
  construction.
* **Vectorised streaming.**  The packed stream goes through the vector
  unit's whole-stream gather path (one NumPy segment-index gather per
  phase), which is output- and counter-exact against the beat-level
  simulation.

The recommended way to reach this engine is
:meth:`repro.core.session.NovaSession.serve`, with the geometry
expressed as a typed :class:`repro.core.config.NovaConfig` (or a Table
II preset name such as ``"jetson-nx"``).

Accounting semantics
--------------------
* Each per-request :class:`~repro.core.attention.AttentionLayerResult`
  reports the **sequential-equivalent** cost: ``vector_cycles`` and
  event counters identical to what a dedicated single-request
  :class:`NovaAttentionEngine` would charge that request (including its
  own tail padding).  Those are the numbers a per-request SLA or energy
  bill is written against.
* The batch-level ``counters`` are the events the shared overlay
  actually produced.  Packing eliminates per-request tail padding and
  shares broadcasts across requests, so for the lane-local events
  (``comparator_eval`` / ``mac_op`` / ``pair_capture``) the batch total
  is at most the sum of the per-request totals — equal exactly when
  every request fills its final batch.  The gap *is* the packing win,
  surfaced as :attr:`BatchedAttentionResult.packing_speedup` on the
  cycle side.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.approx.quantize import beat_of_address
from repro.approx.table_cache import compiled_table
from repro.core.config import NovaConfig, resolve_engine_config
from repro.core.attention import (
    ATTENTION_FUNCTIONS,
    AttentionLayerResult,
    assemble_probabilities,
    finish_attention_layer,
    host_attention_scores,
    pack_lane_stream,
    shift_scores,
    softmax_reduction,
)
from repro.core.vector_unit import NovaVectorUnit
from repro.noc.stats import EventCounters

if TYPE_CHECKING:
    from repro.core.mapper import BroadcastSchedule

__all__ = [
    "AttentionRequest",
    "BatchedAttentionResult",
    "BatchedNovaAttentionEngine",
]


@dataclass(frozen=True)
class AttentionRequest:
    """One independent multi-head self-attention request.

    ``x`` is ``(seq, hidden)``; the four weight matrices are
    ``(hidden, hidden)``.  Requests in a batch may differ in sequence
    length (and even hidden size) — the packed lane stream is flat.
    """

    x: np.ndarray
    wq: np.ndarray
    wk: np.ndarray
    wv: np.ndarray
    wo: np.ndarray
    n_heads: int

    def __post_init__(self) -> None:
        x = np.asarray(self.x, dtype=np.float64)
        object.__setattr__(self, "x", x)
        if x.ndim != 2:
            raise ValueError(f"x must be (seq, hidden), got shape {x.shape}")
        seq, hidden = x.shape
        if seq < 1:
            raise ValueError(
                "request must contain at least one token (got an empty "
                f"sequence: x has shape {x.shape})"
            )
        if hidden < 1:
            raise ValueError(
                "request must have a hidden width >= 1 (got zero-width "
                f"x of shape {x.shape})"
            )
        if self.n_heads < 1:
            raise ValueError(f"n_heads must be >= 1, got {self.n_heads}")
        if hidden % self.n_heads != 0:
            raise ValueError(
                f"hidden ({hidden}) must divide by n_heads ({self.n_heads})"
            )
        for name in ("wq", "wk", "wv", "wo"):
            w = np.asarray(getattr(self, name), dtype=np.float64)
            object.__setattr__(self, name, w)
            if w.shape != (hidden, hidden):
                raise ValueError(
                    f"{name} must have shape ({hidden}, {hidden}), got {w.shape}"
                )

    @property
    def seq(self) -> int:
        """Sequence length of this request."""
        return self.x.shape[0]

    @property
    def hidden(self) -> int:
        """Hidden width of this request."""
        return self.x.shape[1]


@dataclass(frozen=True)
class BatchedAttentionResult:
    """Outcome of one batch through the shared overlay.

    ``results[i]`` is the full per-request result, identical (outputs,
    probabilities, cycles, counters) to running request ``i`` alone on a
    sequential engine with the same tables.  ``packed_vector_cycles`` is
    what the shared overlay actually spent; ``sequential_vector_cycles``
    is the sum of the per-request costs.  ``counters`` are the events
    the shared overlay actually produced for the whole batch.
    """

    results: tuple[AttentionLayerResult, ...]
    packed_vector_cycles: int
    sequential_vector_cycles: int
    counters: EventCounters

    @property
    def n_requests(self) -> int:
        """Requests served in this batch."""
        return len(self.results)

    @property
    def packing_speedup(self) -> float:
        """Sequential vector cycles per packed vector cycle (>= 1)."""
        if self.packed_vector_cycles == 0:
            return 1.0
        return self.sequential_vector_cycles / self.packed_vector_cycles


class BatchedNovaAttentionEngine:
    """One shared NOVA overlay serving batches of attention requests.

    The primary constructor interface is a
    :class:`~repro.core.config.NovaConfig` (or a Table II preset name),
    mirroring :class:`NovaAttentionEngine`; legacy loose geometry kwargs
    still build the identical engine but emit a ``DeprecationWarning``.
    The crucial difference from the reference engine is that a *single*
    :class:`NovaVectorUnit` serves every non-linear function by table
    switching (``retarget``), as the paper's overlay does, instead of
    one instance per function.
    """

    def __init__(
        self,
        config: NovaConfig | str | None = None,
        *,
        n_routers: int | None = None,
        neurons_per_router: int | None = None,
        pe_frequency_ghz: float | None = None,
        hop_mm: float | None = None,
        n_segments: int | None = None,
        seed: int | None = None,
    ) -> None:
        self.config = resolve_engine_config(
            config,
            dict(
                n_routers=n_routers,
                neurons_per_router=neurons_per_router,
                pe_frequency_ghz=pe_frequency_ghz,
                hop_mm=hop_mm,
                n_segments=n_segments,
                seed=seed,
            ),
            owner="BatchedNovaAttentionEngine",
        )
        cfg = self.config
        self.tables = {
            name: compiled_table(name, n_segments=cfg.n_segments, seed=cfg.seed)
            for name in ATTENTION_FUNCTIONS
        }
        self.unit = NovaVectorUnit(self.tables["exp"], cfg)
        self.n_routers = cfg.n_routers
        self.neurons_per_router = cfg.neurons_per_router
        self.pe_frequency_ghz = cfg.pe_frequency_ghz
        self.hop_mm = cfg.hop_mm
        self.n_lanes = cfg.n_lanes
        self._shape = cfg.lane_shape

    # ------------------------------------------------------------------
    # Packed elementwise execution.
    # ------------------------------------------------------------------

    def _run_packed(
        self, function: str, flat: np.ndarray
    ) -> tuple[np.ndarray, int, np.ndarray]:
        """One packed lane stream through the shared overlay.

        Returns ``(outputs, packed_vector_cycles, addresses)``, with
        ``addresses`` the flat per-query segment indices (a free
        by-product of the vectorised stream, reused for per-request
        event accounting); only the stream's final batch is padded.
        """
        self.unit.retarget(self.tables[function])
        batches, n_batches = pack_lane_stream(flat, self._shape)
        stream = self.unit.run_stream(batches)
        return (
            stream.outputs.reshape(-1)[: len(flat)],
            n_batches,
            stream.addresses.reshape(-1)[: len(flat)],
        )

    def _schedule_for(self, function: str) -> "BroadcastSchedule":
        """The (cached) broadcast plan for one function's table."""
        return self.unit.mapper.schedule(
            n_routers=self.n_routers,
            pe_frequency_ghz=self.pe_frequency_ghz,
            n_pairs=self.tables[function].n_segments,
            hop_mm=self.hop_mm,
        )

    def _sequential_request_counters(
        self, streams: dict[str, tuple[int, int]]
    ) -> EventCounters:
        """Events a dedicated single-request engine would charge.

        ``streams`` maps function name to ``(n_queries, tag_sum)`` where
        ``tag_sum`` is the sum of ``address & (n_beats - 1)`` over the
        request's real (un-padded) queries, sliced from the packed
        stream's addresses.  The closed form reproduces the sequential
        engine's accounting exactly, including the zero-padding of each
        request's final lane batch and the address-dependent
        ``tag_match`` count.
        """
        counters = EventCounters()
        lanes = self.n_lanes
        for function, (n_queries, tag_sum) in streams.items():
            table = self.tables[function]
            schedule = self._schedule_for(function)
            n_batches = -(-n_queries // lanes)
            padded = n_batches * lanes
            pad_sel = beat_of_address(
                int(table.segment_index(0.0)), schedule.n_beats
            )
            counters.add("comparator_eval", padded)
            counters.add("mac_op", padded)
            counters.add("pair_capture", padded)
            counters.add(
                "tag_match",
                tag_sum + (padded - n_queries) * pad_sel + padded,
            )
            for event, count in schedule.broadcast_event_counts(
                n_batches
            ).items():
                if count:
                    counters.add(event, count)
        return counters

    # ------------------------------------------------------------------
    # Batched attention.
    # ------------------------------------------------------------------

    def attention_batch(
        self, requests: Sequence[AttentionRequest] | Iterable[AttentionRequest]
    ) -> BatchedAttentionResult:
        """Serve a batch of independent attention requests.

        Host GEMMs (projections, scores, context) run per request in
        plain numpy, as on the sequential engine; the non-linear phases
        (softmax exp, normaliser reciprocal) run packed across the whole
        batch through the shared overlay.  Outputs are bit-identical to
        per-request sequential execution and each per-request result
        carries its sequential-equivalent cycle and event cost.
        """
        requests = tuple(requests)
        if not requests:
            raise ValueError("need at least one request")
        before = self.unit._lifetime_counters()

        # Host phase: per-request projections and score matrices (the
        # exact helpers the sequential engine uses — see the "host-side
        # numerics" section of repro.core.attention).
        states = []
        for req in requests:
            scores, v = host_attention_scores(
                req.x, req.wq, req.wk, req.wv, req.n_heads
            )
            states.append({"req": req, "v": v, "shifted": shift_scores(scores)})

        # Packed phase 1: every request's exponentials in one stream.
        # The shifted scores are consumed here — only their shape/size
        # survive, so the batch holds one packed copy, not one per stage.
        exp_flat = np.concatenate([s["shifted"].reshape(-1) for s in states])
        for s in states:
            s["scores_shape"] = s["shifted"].shape
            s["n_exp"] = s["shifted"].size
            del s["shifted"]
        exp_out, exp_packed_batches, exp_addr = self._run_packed("exp", exp_flat)
        exp_n_beats = self._schedule_for("exp").n_beats
        offset = 0
        for s in states:
            size = s["n_exp"]
            raw_numer = exp_out[offset:offset + size].reshape(s["scores_shape"])
            s["exp_tag_sum"] = int(
                beat_of_address(exp_addr[offset:offset + size], exp_n_beats).sum()
            )
            offset += size
            # Host reductions: clamp, row sums, power-of-two reduction.
            s["numer"], s["mantissa"], s["exponent"] = softmax_reduction(
                raw_numer
            )

        # Packed phase 2: every request's reciprocals in one stream.
        recip_flat = np.concatenate([s["mantissa"].reshape(-1) for s in states])
        recip_out, recip_packed_batches, recip_addr = self._run_packed(
            "reciprocal", recip_flat
        )
        recip_n_beats = self._schedule_for("reciprocal").n_beats
        offset = 0
        for s in states:
            size = s["mantissa"].size
            s["inv"] = recip_out[offset:offset + size].reshape(s["mantissa"].shape)
            s["recip_tag_sum"] = int(
                beat_of_address(
                    recip_addr[offset:offset + size], recip_n_beats
                ).sum()
            )
            offset += size

        # Host phase: assemble probabilities, context and outputs.
        lanes = self.n_lanes
        results = []
        sequential_cycles = 0
        for s in states:
            req = s["req"]
            seq = req.seq
            probs = assemble_probabilities(s["numer"], s["inv"], s["exponent"])
            outputs = finish_attention_layer(probs, s["v"], req.wo)
            exp_batches = -(-s["n_exp"] // lanes)
            recip_batches = -(-s["mantissa"].size // lanes)
            vector_cycles = exp_batches + recip_batches
            sequential_cycles += vector_cycles
            results.append(
                AttentionLayerResult(
                    outputs=outputs,
                    probabilities=probs,
                    vector_cycles=vector_cycles,
                    nonlinear_queries=int(
                        req.n_heads * seq * seq + np.prod(probs.shape[:-1])
                    ),
                    counters=self._sequential_request_counters(
                        {
                            "exp": (s["n_exp"], s["exp_tag_sum"]),
                            "reciprocal": (s["mantissa"].size, s["recip_tag_sum"]),
                        }
                    ),
                )
            )

        return BatchedAttentionResult(
            results=tuple(results),
            packed_vector_cycles=exp_packed_batches + recip_packed_batches,
            sequential_vector_cycles=sequential_cycles,
            counters=self.unit._lifetime_counters().diff(before),
        )
