"""Autoregressive decode on the NOVA overlay: KV cache + continuous batching.

The paper motivates NOVA with attention-heavy inference, and the serving
regime that dominates such traffic is not full-prefill attention but
token-by-token *decode* over a KV cache: each new token attends to every
cached key/value pair, so the softmax runs over exactly one row per head
per step.  This module opens that workload on the same cycle/event-exact
hardware model the prefill engines use:

* :class:`KVCache` — a per-request key/value cache with append, optional
  sliding-window eviction, and page recycling (``reset``).
* :class:`NovaDecodeEngine` — incremental single-token attention
  (``decode_step``) plus a causal packed prefill (``prefill``) and a
  self-feeding ``generate`` loop, built directly on top of
  :class:`~repro.core.batched_attention.BatchedNovaAttentionEngine`'s
  shared-table machinery: one physical
  :class:`~repro.core.vector_unit.NovaVectorUnit` serves the softmax
  exponential and the normaliser reciprocal by table retargeting, and
  per-request costs come from the same closed-form sequential-equivalent
  accounting the batched engine uses.
* :class:`ContinuousBatchScheduler` — Orca-style continuous batching:
  every scheduler step packs the prefill rows of newly admitted requests
  *and* the decode rows of in-flight requests into a single lane stream
  through the shared overlay; requests join and leave the batch between
  steps.  With ``speculative=True`` each in-flight decode row becomes a
  whole draft-and-verify pass (:mod:`repro.core.speculative`): drafted
  tokens ride the same fused streams and rejected suffixes roll back by
  cache truncation, with results still bit-identical per request.  Two memory models back it: contiguous per-request pages
  recycled through a best-fit pool (any page with ``capacity >=
  requested`` serves), or — with ``paged=True`` — a vLLM-style
  :class:`~repro.core.paging.BlockPool` of fixed-size blocks shared by
  every request, with lazy block allocation, first-block-fit admission
  and a deferral/preemption policy under memory pressure.

Bit-exactness contract
----------------------
Token-by-token decode, the packed causal prefill and the continuous
batcher all produce **bit-identical** probabilities and outputs for the
same causal sequence.  This holds by construction, for the same reason
the batched engine matches the sequential engine: there is a single copy
of every numerically sensitive step.  Per token, both paths run

1. :func:`project_token` — the token's q/k/v projections (vector-matrix,
   the decode-granularity GEMM),
2. :func:`scores_for_query` — scaled dot-products against the cached
   keys (same cache layout, hence same strides, in every path),
3. the hardware exponential (elementwise through the shared table — the
   output of each query is independent of how queries are packed into
   lane batches),
4. :func:`~repro.core.attention.softmax_reduction` /
   :func:`~repro.core.attention.assemble_probabilities` on the token's
   own ``(heads, kv_len)`` row, and
5. :func:`context_for_query` — the context GEMV over a contiguous
   snapshot of the cached values.

Cycle/counter accounting mirrors the batched engine: each
prefill/decode *job* reports the sequential-equivalent cost a dedicated
engine invocation would charge (closed form, including tail padding and
the address-dependent ``tag_match`` count), while batch-level results
additionally report what the shared overlay actually spent — the gap is
the continuous-batching win.

Tables are compiled once at engine construction through the process-wide
:mod:`repro.approx.table_cache`; decode steps only *retarget* the unit
(free on NOVA — the table lives on the wires), so running any number of
steps performs zero additional table compilations
(:func:`repro.approx.table_cache.table_cache_info` is pinned flat across
steps by the test suite).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, TypeAlias

import numpy as np

from repro.approx.quantize import beat_of_address
from repro.core.attention import (
    assemble_probabilities,
    shift_scores,
    softmax_reduction,
)
from repro.core.batched_attention import (
    AttentionRequest,
    BatchedNovaAttentionEngine,
)
from repro.noc.stats import EventCounters

if TYPE_CHECKING:
    from repro.core.paging import BlockPool, PagedKVCache
    from repro.core.speculative import (
        DraftModel,
        SpeculativeDecodeEngine,
        SpeculativeGenerateResult,
        VerifyPassResult,
        _SpecPass,
    )
    from repro.serving.policies import SchedulingPolicy

    #: The cache duck type every decode path accepts: the contiguous
    #: per-request page or the block-pool-backed paged cache.  Both
    #: expose the same append/evict/truncate/snapshot surface.
    KVCacheLike: TypeAlias = "KVCache | PagedKVCache"

__all__ = [
    "KVCache",
    "KVCacheOverflow",
    "DecodeRequest",
    "DecodeState",
    "DecodeStepResult",
    "CausalPrefillResult",
    "DecodeResult",
    "GenerateResult",
    "NovaDecodeEngine",
    "ContinuousBatchScheduler",
    "ContinuousBatchResult",
    "SequenceMeta",
    "project_token",
    "scores_for_query",
    "context_for_query",
]


@dataclass(frozen=True)
class SequenceMeta:
    """Serving metadata for one request in a continuously batched run.

    The front door (:mod:`repro.serving`) attaches one of these per
    request; plain callers never see it (the scheduler defaults every
    field).  All times are **virtual cycles** on the scheduler's
    deterministic clock — the clock starts at 0, advances by the packed
    vector cycles of each executed step, and jumps forward over idle
    gaps to the next arrival; no wall-clock is ever read (NV008).

    * ``arrival`` — the cycle the request becomes visible to admission
      (a request cannot be admitted before it arrives),
    * ``priority`` — larger is more urgent (policy-interpreted),
    * ``tenant`` — fairness/rate-limit bucket,
    * ``deadline`` — absolute virtual-cycle deadline for the *finish*
      of the request (policy- and metrics-interpreted), or ``None``.
    """

    arrival: float = 0.0
    priority: int = 0
    tenant: str = "default"
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.arrival < 0.0:
            raise ValueError(f"arrival must be >= 0, got {self.arrival}")
        if self.deadline is not None and self.deadline <= self.arrival:
            raise ValueError(
                f"deadline ({self.deadline}) must fall after arrival "
                f"({self.arrival})"
            )


class KVCacheOverflow(RuntimeError):
    """Appending to a full :class:`KVCache` that has no eviction window."""


class KVCache:
    """Per-request key/value cache for autoregressive decode.

    Storage is preallocated at ``(n_heads, capacity, head_dim)`` so an
    append is a row write, never a reallocation — the software analogue
    of a fixed cache page.  ``window=None`` (the default) makes the
    capacity hard: appending to a full cache raises
    :class:`KVCacheOverflow`.  ``window=w`` caps the cache at the last
    ``w`` tokens instead (sliding-window attention): the oldest entry is
    evicted to make room and ``start_position`` advances, so the cache
    always holds positions ``[start_position, start_position + length)``.

    ``reset()`` returns the page to its empty state without touching the
    allocation, which is what lets
    :class:`ContinuousBatchScheduler` recycle pages across requests.
    """

    def __init__(
        self,
        n_heads: int,
        head_dim: int,
        capacity: int,
        window: int | None = None,
    ) -> None:
        if n_heads < 1:
            raise ValueError(f"n_heads must be >= 1, got {n_heads}")
        if head_dim < 1:
            raise ValueError(f"head_dim must be >= 1, got {head_dim}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if window is not None:
            if window < 1:
                raise ValueError(f"window must be >= 1, got {window}")
            if window > capacity:
                raise ValueError(
                    f"window ({window}) cannot exceed capacity ({capacity})"
                )
        self.n_heads = n_heads
        self.head_dim = head_dim
        self.capacity = capacity
        self.window = window
        self._k = np.zeros((n_heads, capacity, head_dim))
        self._v = np.zeros((n_heads, capacity, head_dim))
        self.length = 0
        self.start_position = 0
        self.evictions = 0

    @property
    def limit(self) -> int:
        """Maximum entries held at once (``window`` if set, else capacity)."""
        return self.capacity if self.window is None else self.window

    @property
    def keys(self) -> np.ndarray:
        """View of the valid cached keys, ``(n_heads, length, head_dim)``."""
        return self._k[:, : self.length]

    @property
    def values(self) -> np.ndarray:
        """View of the valid cached values, ``(n_heads, length, head_dim)``."""
        return self._v[:, : self.length]

    def append(self, k_t: np.ndarray, v_t: np.ndarray) -> None:
        """Append one token's per-head key/value rows.

        ``k_t``/``v_t`` have shape ``(n_heads, head_dim)``.  A full
        windowed cache evicts its oldest entry first; a full hard-capacity
        cache raises :class:`KVCacheOverflow`.  Atomic: a raising
        append leaves the cache byte-identical (no partial evict, no
        length change), so callers can defer the token and retry.
        """
        expected = (self.n_heads, self.head_dim)
        k_t = np.asarray(k_t, dtype=np.float64)
        v_t = np.asarray(v_t, dtype=np.float64)
        if k_t.shape != expected or v_t.shape != expected:
            raise ValueError(
                f"expected per-token k/v of shape {expected}, got "
                f"{k_t.shape} / {v_t.shape}"
            )
        if self.length == self.limit:
            if self.window is None:
                raise KVCacheOverflow(
                    f"KV cache full at capacity {self.capacity} "
                    f"(position {self.start_position + self.length}); "
                    "set a window for sliding eviction or raise "
                    "max_seq_len"
                )
            self.evict(1)
        self._k[:, self.length] = k_t
        self._v[:, self.length] = v_t
        self.length += 1

    def evict(self, n: int) -> None:
        """Drop the ``n`` oldest cached tokens (advances ``start_position``).

        Atomic: an out-of-range ``n`` raises before any state changes.
        """
        if not 0 <= n <= self.length:
            raise ValueError(
                f"cannot evict {n} of {self.length} cached tokens"
            )
        if n == 0:
            return
        keep = self.length - n
        self._k[:, :keep] = self._k[:, n : self.length]
        self._v[:, :keep] = self._v[:, n : self.length]
        self.length = keep
        self.start_position += n
        self.evictions += n

    def truncate(self, n: int) -> None:
        """Drop the ``n`` *newest* cached tokens (speculative rollback).

        The tail-side complement of :meth:`evict`: rolling back
        rejected draft tokens just shortens the live span
        (``start_position`` is untouched) — the next append overwrites
        the rolled-back rows.  Atomic: an out-of-range ``n`` raises
        before the length changes.
        """
        if not 0 <= n <= self.length:
            raise ValueError(
                f"cannot truncate {n} of {self.length} cached tokens"
            )
        self.length -= n

    def values_snapshot(self, kv_len: int) -> np.ndarray:
        """Contiguous copy of the first ``kv_len`` cached values.

        The deferred-snapshot hook shared with
        :class:`~repro.core.paging.PagedKVCache` (which gathers through
        its block table): both return byte-identical
        ``(n_heads, kv_len, head_dim)`` arrays for the same appended
        tokens, which is what keeps the paged and contiguous decode
        paths bit-exact.
        """
        return self._v[:, :kv_len].copy()

    def fork(self) -> "KVCache":
        """An independent private copy of this cache's live state.

        The contiguous counterpart of
        :meth:`~repro.core.paging.PagedKVCache.fork`: the twin presents
        the same live span and history but owns its own storage, so
        appends on either side never show through.  (No blocks to
        share here — the contiguous layout pays a real copy where the
        paged layout pays refcounts; tree speculation forks at most a
        handful of branch caches per pass.)
        """
        twin = KVCache(
            self.n_heads, self.head_dim, self.capacity, window=self.window
        )
        twin._adopt_span(self)
        return twin

    def _adopt_span(self, source: "KVCache") -> None:
        """Copy ``source``'s live rows, span and eviction history into
        this cache — :meth:`fork`'s accounting step, on the owner so
        the eviction counter is only ever written by its own object."""
        self._k[:, : source.length] = source._k[:, : source.length]
        self._v[:, : source.length] = source._v[:, : source.length]
        self.length = source.length
        self.start_position = source.start_position
        self.evictions = source.evictions

    def reset(self) -> None:
        """Empty the cache in place (page recycling; allocation kept)."""
        self.length = 0
        self.start_position = 0
        self.evictions = 0

    @property
    def fragmentation_slots(self) -> int:
        """Reserved-but-unused token slots (the contiguous layout's
        stranded memory: a whole worst-case page minus the live span)."""
        return self.capacity - self.length

    def can_serve(self, n_heads: int, head_dim: int, capacity: int) -> bool:
        """Whether this page can hold a request of the given geometry.

        Capacity is a *lower bound*, not an exact match: a recycled
        2048-token page serves a 512-token request fine (the request's
        ``window``/overflow limits are enforced logically, against its
        own capacity, by the engine).
        """
        return (
            self.n_heads == n_heads
            and self.head_dim == head_dim
            and self.capacity >= capacity
        )

    def __repr__(self) -> str:
        return (
            f"KVCache({self.n_heads} heads x {self.capacity} x "
            f"{self.head_dim}, length={self.length}"
            + (f", window={self.window}" if self.window is not None else "")
            + ")"
        )


@dataclass(frozen=True)
class DecodeRequest(AttentionRequest):
    """One autoregressive decode request: a prompt plus a token budget.

    Extends :class:`~repro.core.batched_attention.AttentionRequest` (its
    ``x`` is the prompt embedding matrix) with the decode contract:

    * ``max_new_tokens`` — tokens to generate after the prompt,
    * ``max_seq_len`` — KV-cache capacity (defaults to
      ``prompt + max_new_tokens``); a request that cannot fit raises at
      :meth:`NovaDecodeEngine.start`,
    * ``window`` — optional sliding-window attention span (evicts the
      oldest cache entry instead of overflowing),
    * ``causal`` — decode is only defined for causal attention; the
      engines reject ``causal=False`` requests.
    """

    max_new_tokens: int = 0
    max_seq_len: int | None = None
    window: int | None = None
    causal: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.max_new_tokens < 0:
            raise ValueError(
                f"max_new_tokens must be >= 0, got {self.max_new_tokens}"
            )
        if self.max_seq_len is not None and self.max_seq_len < 1:
            raise ValueError(
                f"max_seq_len must be >= 1, got {self.max_seq_len}"
            )
        if self.window is not None:
            if self.window < 1:
                raise ValueError(f"window must be >= 1, got {self.window}")
            if self.max_seq_len is not None and self.window > self.max_seq_len:
                raise ValueError(
                    f"window ({self.window}) cannot exceed max_seq_len "
                    f"({self.max_seq_len})"
                )

    @property
    def head_dim(self) -> int:
        """Per-head projection width."""
        return self.hidden // self.n_heads

    @property
    def total_tokens(self) -> int:
        """Prompt tokens plus the generation budget."""
        return self.seq + self.max_new_tokens

    @property
    def capacity(self) -> int:
        """KV-cache capacity this request needs."""
        if self.window is not None:
            return self.window
        if self.max_seq_len is not None:
            return self.max_seq_len
        return self.total_tokens


# ----------------------------------------------------------------------
# Per-token host numerics shared by every decode path.
#
# As in repro.core.attention: the decode-vs-prefill (and one-at-a-time
# vs continuously-batched) bit-exactness contract holds by construction
# only because there is a single copy of each step, operating on the
# same shapes in every path.
# ----------------------------------------------------------------------


def project_token(
    x_t: np.ndarray,
    wq: np.ndarray,
    wk: np.ndarray,
    wv: np.ndarray,
    n_heads: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One token's q/k/v projections, split by head.

    ``x_t`` is ``(hidden,)``; returns ``(q, k, v)`` each of shape
    ``(n_heads, head_dim)``.  This vector-matrix form is the decode
    granularity; the causal prefill uses it too so that every path
    produces bit-identical projections.
    """
    hidden = x_t.shape[0]
    head_dim = hidden // n_heads
    q = (x_t @ wq).reshape(n_heads, head_dim)
    k = (x_t @ wk).reshape(n_heads, head_dim)
    v = (x_t @ wv).reshape(n_heads, head_dim)
    return q, k, v


def scores_for_query(q: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Scaled attention scores of one query against the cached keys.

    ``q`` is ``(n_heads, head_dim)``, ``keys`` is
    ``(n_heads, kv_len, head_dim)``; returns ``(n_heads, kv_len)``.
    """
    head_dim = q.shape[-1]
    return (keys @ q[:, :, None])[:, :, 0] / np.sqrt(head_dim)


def context_for_query(probs: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Merged per-token attention context.

    ``probs`` is ``(n_heads, kv_len)``, ``values`` a *contiguous*
    ``(n_heads, kv_len, head_dim)`` snapshot; returns the head-merged
    ``(n_heads * head_dim,)`` context row.
    """
    context = (probs[:, None, :] @ values)[:, 0, :]
    return context.reshape(-1)


# ----------------------------------------------------------------------
# Results.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DecodeStepResult:
    """One decoded token through the overlay.

    ``probabilities`` spans the KV cache at this step
    (``(n_heads, kv_length)``); ``position`` is the token's absolute
    index in the sequence.  ``vector_cycles`` / ``counters`` are the
    sequential-equivalent cost a dedicated engine invocation would
    charge for exactly this step (tail padding included).
    """

    output: np.ndarray            # (hidden,)
    probabilities: np.ndarray     # (n_heads, kv_length)
    position: int
    kv_length: int
    vector_cycles: int
    nonlinear_queries: int
    counters: EventCounters


@dataclass(frozen=True)
class CausalPrefillResult:
    """The packed causal prefill of one prompt.

    ``probabilities[h, t, :]`` holds row ``t``'s attention weights over
    the cached span, zero elsewhere (upper triangle and, under a sliding
    window, evicted columns).  ``vector_cycles`` is the packed cost of
    the whole prefill — one exp stream and one reciprocal stream.
    """

    outputs: np.ndarray           # (prompt_len, hidden)
    probabilities: np.ndarray     # (n_heads, prompt_len, prompt_len)
    vector_cycles: int
    nonlinear_queries: int
    counters: EventCounters


@dataclass(frozen=True)
class DecodeResult:
    """A sequence decoded token by token (the pure decode regime)."""

    steps: tuple[DecodeStepResult, ...]
    outputs: np.ndarray           # (n_tokens, hidden)
    vector_cycles: int
    counters: EventCounters

    @property
    def n_tokens(self) -> int:
        """Tokens decoded."""
        return len(self.steps)

    @property
    def cycles_per_token(self) -> float:
        """Mean vector cycles per decoded token."""
        return self.vector_cycles / max(1, self.n_tokens)


@dataclass(frozen=True)
class GenerateResult:
    """Prefill plus autoregressive generation for one request."""

    prefill: CausalPrefillResult
    steps: tuple[DecodeStepResult, ...]
    generated: np.ndarray         # (n_generated, hidden)
    vector_cycles: int            # prefill + every decode step
    counters: EventCounters

    @property
    def n_generated(self) -> int:
        """Tokens generated after the prompt."""
        return len(self.steps)

    @property
    def decode_vector_cycles(self) -> int:
        """Vector cycles spent in decode steps only."""
        return self.vector_cycles - self.prefill.vector_cycles

    @property
    def cycles_per_token(self) -> float:
        """Mean decode vector cycles per generated token."""
        return self.decode_vector_cycles / max(1, self.n_generated)


class DecodeState:
    """In-flight decode of one request: its cache and position."""

    def __init__(self, request: DecodeRequest, cache: KVCacheLike) -> None:
        self.request = request
        self.cache = cache
        self.position = 0          # absolute index of the next token

    def __repr__(self) -> str:
        return (
            f"DecodeState(position={self.position}, cache={self.cache!r})"
        )


# ----------------------------------------------------------------------
# Job planning/execution internals.
# ----------------------------------------------------------------------


class _TokenPlan:
    """Host-side state of one planned token, awaiting the hardware exp."""

    __slots__ = (
        "position", "span_start", "shifted", "n_exp",
        "numer", "exponent", "_values", "_cache", "_kv_len",
    )

    # ``shifted``/``numer``/``_values``/``_cache`` are ``Any`` rather
    # than Optional ndarrays: ``release()`` nulls them after execution,
    # and the planning/execution code touches them without narrowing.
    position: int
    span_start: int
    shifted: Any
    n_exp: int
    numer: Any
    exponent: int
    _values: Any
    _cache: Any
    _kv_len: int | None

    def __init__(
        self,
        position: int,
        span_start: int,
        shifted: np.ndarray,
        *,
        values: np.ndarray | None = None,
        cache: KVCacheLike | None = None,
        kv_len: int | None = None,
    ) -> None:
        self.position = position
        self.span_start = span_start
        self.shifted = shifted      # (heads, kv_len), max-subtracted scores
        self.n_exp = shifted.size
        self._values = values       # eager contiguous snapshot (windowed)
        self._cache = cache         # deferred snapshot source (append-only)
        self._kv_len = kv_len

    def take_values(self) -> np.ndarray:
        """The contiguous ``(heads, kv_len, head_dim)`` value snapshot
        this token attends to.

        Windowed caches evict between appends, so their snapshot is
        copied eagerly at plan time.  Append-only caches
        (``window=None``) never mutate rows ``< kv_len`` between
        planning and execution (jobs always execute in the same step
        they were planned), so the copy is deferred to use — one
        ``O(kv_len)`` allocation live at a time instead of
        ``O(prompt_len^2)`` held across a whole prefill job.  Both
        forms produce byte-identical arrays — via
        ``values_snapshot`` on either the contiguous or the paged
        cache — so the bit-exactness contract is unaffected.
        """
        if self._values is not None:
            return self._values
        return self._cache.values_snapshot(self._kv_len)

    def release(self) -> None:
        self.numer = self.shifted = None
        self._values = self._cache = None


class _Job:
    """One engine-invocation-equivalent unit of work (prefill or step)."""

    __slots__ = ("state", "kind", "tokens")

    def __init__(self, state: DecodeState, kind: str,
                 tokens: list[_TokenPlan]) -> None:
        self.state = state
        self.kind = kind            # "prefill" | "step"
        self.tokens = tokens


class _JobResult:
    """Per-job outcome: one entry per token plus sequential-equivalent cost."""

    __slots__ = (
        "job", "probabilities", "outputs", "vector_cycles",
        "nonlinear_queries", "counters",
    )

    def __init__(
        self,
        job: _Job,
        probabilities: list[np.ndarray],
        outputs: list[np.ndarray],
        vector_cycles: int,
        nonlinear_queries: int,
        counters: EventCounters,
    ) -> None:
        self.job = job
        self.probabilities = probabilities  # list[(heads, kv_len)]
        self.outputs = outputs              # list[(hidden,)]
        self.vector_cycles = vector_cycles
        self.nonlinear_queries = nonlinear_queries
        self.counters = counters


class NovaDecodeEngine(BatchedNovaAttentionEngine):
    """KV-cached autoregressive decode on one shared NOVA overlay.

    Built directly on the batched engine's machinery: a single
    :class:`~repro.core.vector_unit.NovaVectorUnit` serves the softmax
    exponential and the normaliser reciprocal by table retargeting, the
    tables come from the process-wide compiled-table cache, and
    per-request cost accounting reuses the closed-form
    sequential-equivalent counters.  Constructor interface matches the
    other engines (a :class:`~repro.core.config.NovaConfig`, a Table II
    preset name, or legacy kwargs with a ``DeprecationWarning``).

    Three entry points, all bit-exact against one another:

    * :meth:`prefill` — the whole prompt, packed into one exp stream and
      one reciprocal stream (the efficient way in);
    * :meth:`decode_step` — one token against the KV cache;
    * :meth:`generate` — prefill then a self-feeding decode loop (the
      attention output of the last position is the next token's
      embedding; with a single attention layer and no vocabulary this is
      the serving-shaped closed loop the benchmarks measure).
    """

    # ------------------------------------------------------------------
    # Request lifecycle.
    # ------------------------------------------------------------------

    def validate_request(self, request: DecodeRequest) -> None:
        """Reject requests the decode path cannot serve.

        Raises ``TypeError`` for non-:class:`DecodeRequest` inputs,
        ``ValueError`` for non-causal requests and
        :class:`KVCacheOverflow` for a request whose prompt + budget
        cannot fit its cache capacity (and that has no sliding window).
        """
        if not isinstance(request, DecodeRequest):
            raise TypeError(
                "decode needs a DecodeRequest (see "
                "repro.workloads.decode_request); got "
                f"{type(request).__name__}"
            )
        if not request.causal:
            raise ValueError(
                "the decode path is causal by definition: token t can only "
                "attend to the KV cache of tokens <= t; got a request with "
                "causal=False (build it from a TransformerConfig with "
                "causal=True)"
            )
        if request.window is None and request.total_tokens > request.capacity:
            raise KVCacheOverflow(
                f"request needs {request.total_tokens} cache slots "
                f"({request.seq} prompt + {request.max_new_tokens} new) but "
                f"max_seq_len is {request.capacity}; shorten the request, "
                "raise max_seq_len, or set a sliding window"
            )

    def start(
        self,
        request: DecodeRequest,
        cache: KVCacheLike | None = None,
        pool: BlockPool | None = None,
        prefix: bool = False,
    ) -> DecodeState:
        """Open a decode state for ``request``.

        ``cache`` optionally recycles an existing page that
        :meth:`KVCache.can_serve` the request — any page with matching
        head geometry and ``capacity >= request.capacity`` (it is reset
        and adopts the request's sliding window).  ``pool`` instead
        opens a :class:`~repro.core.paging.PagedKVCache` drawing blocks
        lazily from the given :class:`~repro.core.paging.BlockPool`.
        By default a fresh contiguous :class:`KVCache` of
        ``request.capacity`` entries is allocated.  Admission is
        atomic: every validation raise fires before any engine or
        cache state changes.

        ``prefix=True`` (paged only) additionally adopts the longest
        already-cached run of the prompt's block keys from the pool's
        prefix index (:meth:`~repro.core.paging.PagedKVCache.
        adopt_prefix`): prefill still computes every prompt row — same
        cycles, same counters, bit-identical outputs — but adopted
        blocks are shared rather than re-written, so the request's pool
        residency charges only its unshared blocks.  Windowed requests
        never adopt (their sliding window evicts the certified prefix).
        """
        self.validate_request(request)
        if cache is not None and pool is not None:
            raise ValueError(
                "pass either a recycled cache page or a block pool, not both"
            )
        if prefix and pool is None:
            raise ValueError(
                "prefix caching needs a block pool (pass pool=...)"
            )
        if pool is not None:
            if (pool.n_heads, pool.head_dim) != (
                request.n_heads, request.head_dim,
            ):
                raise ValueError(
                    f"block pool geometry ({pool.n_heads} heads x "
                    f"{pool.head_dim}) does not match the request "
                    f"({request.n_heads} heads x {request.head_dim})"
                )
            from repro.core.paging import PagedKVCache, prefix_block_keys

            cache = PagedKVCache(
                pool, request.capacity, window=request.window
            )
            if prefix and request.window is None:
                cache.adopt_prefix(
                    prefix_block_keys(
                        request.x, request.wk, request.wv,
                        request.n_heads, pool.block_size,
                    )
                )
        elif cache is None:
            cache = KVCache(
                request.n_heads, request.head_dim, request.capacity,
                window=request.window,
            )
        else:
            if not cache.can_serve(
                request.n_heads, request.head_dim, request.capacity
            ):
                raise ValueError(
                    f"recycled cache page {cache!r} does not match the "
                    f"request geometry ({request.n_heads} heads x "
                    f">={request.capacity} x {request.head_dim})"
                )
            cache.reset()
            cache.window = request.window
        return DecodeState(request=request, cache=cache)

    # ------------------------------------------------------------------
    # Planning: host math up to (and excluding) the hardware exp.
    # ------------------------------------------------------------------

    def _plan_token(self, state: DecodeState, x_t: np.ndarray) -> _TokenPlan:
        """Project one token, append to the cache, stage its softmax row."""
        req = state.request
        x_t = np.asarray(x_t, dtype=np.float64).reshape(-1)
        if x_t.shape[0] != req.hidden:
            raise ValueError(
                f"token embedding must have hidden width {req.hidden}, "
                f"got {x_t.shape[0]}"
            )
        q, k, v = project_token(x_t, req.wq, req.wk, req.wv, req.n_heads)
        state.cache.append(k, v)
        scores = scores_for_query(q, state.cache.keys)
        # The context GEMV runs on a contiguous snapshot of the cached
        # values (copying pins both the values and the exact memory
        # layout every path sees); see _TokenPlan.take_values for when
        # that copy is eager vs deferred.
        if state.cache.window is None:
            snapshot = dict(cache=state.cache, kv_len=state.cache.length)
        else:
            snapshot = dict(
                values=state.cache.values_snapshot(state.cache.length)
            )
        plan = _TokenPlan(
            position=state.position,
            span_start=state.cache.start_position,
            shifted=shift_scores(scores),
            **snapshot,
        )
        state.position += 1
        return plan

    def _plan_prefill(self, state: DecodeState) -> _Job:
        """Stage the whole prompt as one job (packed hardware streams)."""
        if state.position != 0 or state.cache.length != 0:
            raise RuntimeError(
                "prefill must run on a fresh DecodeState (position "
                f"{state.position}, {state.cache.length} cached tokens)"
            )
        tokens = [
            self._plan_token(state, row) for row in state.request.x
        ]
        return _Job(state, "prefill", tokens)

    def _plan_step(self, state: DecodeState, x_t: np.ndarray) -> _Job:
        """Stage one decode token as its own job."""
        return _Job(state, "step", [self._plan_token(state, x_t)])

    # ------------------------------------------------------------------
    # Execution: the two packed hardware phases plus host assembly.
    # ------------------------------------------------------------------

    def _execute(self, jobs: Sequence[_Job]) -> tuple[list[_JobResult], int]:
        """Run staged jobs through the shared overlay.

        All jobs' exponentials form one packed lane stream, then all
        jobs' reciprocals form another — this is the fusion that lets
        the continuous batcher interleave prefill and decode rows across
        lanes.  Returns ``(results, packed_vector_cycles)``; per-job
        costs are sequential-equivalent (closed form).

        The step costs two kernel launches (one
        :meth:`~repro.core.vector_unit.NovaVectorUnit.run_stream` per
        phase, inside ``_run_packed``) plus vectorised host reductions:
        per-job ``tag_match`` sums come from one ``np.add.reduceat``
        over the job boundaries (integer sums — order-insensitive, so
        exactly the per-slice sums the per-job loop computed), and the
        softmax reductions run batched over every group of tokens with
        the same ``(heads, kv_len)`` score shape.  Batching the float
        phases by shape group is what keeps them bit-exact: the
        reductions in :func:`softmax_reduction` /
        :func:`assemble_probabilities` are along the last axis, whose
        pairwise summation order per row is independent of any leading
        batch dimension.
        """
        if not jobs:
            return [], 0
        lanes = self.n_lanes
        tokens = [t for j in jobs for t in j.tokens]
        job_counts = np.array([len(j.tokens) for j in jobs], dtype=np.int64)
        first_token = np.concatenate(([0], np.cumsum(job_counts)[:-1]))
        # Group tokens by score shape before phase 1 mutates the slots;
        # every group batches through softmax_reduction (then
        # assemble_probabilities) as one (group, heads, kv_len) call.
        shape_groups: dict[tuple[int, ...], list[int]] = {}
        for i, token in enumerate(tokens):
            shape_groups.setdefault(token.shifted.shape, []).append(i)

        # Phase 1: every job's exponentials in one stream.
        exp_sizes = np.array([t.n_exp for t in tokens], dtype=np.int64)
        exp_starts = np.concatenate(([0], np.cumsum(exp_sizes)[:-1]))
        exp_flat = np.concatenate([t.shifted.reshape(-1) for t in tokens])
        exp_out, exp_batches, exp_addr = self._run_packed("exp", exp_flat)
        exp_n_beats = self._schedule_for("exp").n_beats
        job_elem_starts = exp_starts[first_token]
        job_exp_sizes = np.add.reduceat(exp_sizes, first_token)
        job_exp_tags = np.add.reduceat(
            beat_of_address(exp_addr, exp_n_beats), job_elem_starts
        )

        # group id -> (token indices, batched numerators, exponents)
        group_states: list[tuple[list[int], np.ndarray, np.ndarray]] = []
        for shape, members in shape_groups.items():
            size = int(np.prod(shape))
            gathered = exp_out[
                exp_starts[members][:, None] + np.arange(size)
            ].reshape(len(members), *shape)
            numer, mantissa, exponent = softmax_reduction(gathered)
            for pos, i in enumerate(members):
                tokens[i].shifted = mantissa[pos]  # reuse: the mantissas
            group_states.append((members, numer, exponent))

        # Phase 2: every job's normaliser reciprocals in one stream.
        recip_sizes = np.array(
            [t.shifted.size for t in tokens], dtype=np.int64
        )
        recip_starts = np.concatenate(([0], np.cumsum(recip_sizes)[:-1]))
        recip_flat = np.concatenate([t.shifted.reshape(-1) for t in tokens])
        recip_out, recip_batches, recip_addr = self._run_packed(
            "reciprocal", recip_flat
        )
        recip_n_beats = self._schedule_for("reciprocal").n_beats
        job_recip_sizes = np.add.reduceat(recip_sizes, first_token)
        job_recip_tags = np.add.reduceat(
            beat_of_address(recip_addr, recip_n_beats),
            recip_starts[first_token],
        )

        token_probs: list[np.ndarray | None] = [None] * len(tokens)
        for members, numer, exponent in group_states:
            n_mantissa = int(recip_sizes[members[0]])
            inv = recip_out[
                recip_starts[members][:, None] + np.arange(n_mantissa)
            ].reshape(len(members), *exponent.shape[1:])
            probs = assemble_probabilities(numer, inv, exponent)
            for pos, i in enumerate(members):
                token_probs[i] = probs[pos]

        # Host assembly: the context GEMVs stay per token (each attends
        # to its own value snapshot), as does result wrapping.
        results: list[_JobResult] = []
        for jnum, job in enumerate(jobs):
            probabilities, outputs = [], []
            for knum, token in enumerate(job.tokens):
                probs = token_probs[int(first_token[jnum]) + knum]
                assert probs is not None
                context = context_for_query(probs, token.take_values())
                probabilities.append(probs)
                outputs.append(context @ job.state.request.wo)
                token.release()
            n_exp = int(job_exp_sizes[jnum])
            n_recip = int(job_recip_sizes[jnum])
            results.append(
                _JobResult(
                    job=job,
                    probabilities=probabilities,
                    outputs=outputs,
                    vector_cycles=(
                        -(-n_exp // lanes) + -(-n_recip // lanes)
                    ),
                    nonlinear_queries=n_exp + n_recip,
                    counters=self._sequential_request_counters(
                        {
                            "exp": (n_exp, int(job_exp_tags[jnum])),
                            "reciprocal": (
                                n_recip, int(job_recip_tags[jnum])
                            ),
                        }
                    ),
                )
            )
        return results, exp_batches + recip_batches

    # ------------------------------------------------------------------
    # Result wrapping.
    # ------------------------------------------------------------------

    @staticmethod
    def _wrap_prefill(result: _JobResult) -> CausalPrefillResult:
        job = result.job
        req = job.state.request
        prompt_len = len(job.tokens)
        probabilities = np.zeros((req.n_heads, prompt_len, prompt_len))
        for token, probs in zip(job.tokens, result.probabilities):
            span = probs.shape[-1]
            start = token.span_start
            probabilities[:, token.position, start : start + span] = probs
        return CausalPrefillResult(
            outputs=np.stack(result.outputs),
            probabilities=probabilities,
            vector_cycles=result.vector_cycles,
            nonlinear_queries=result.nonlinear_queries,
            counters=result.counters,
        )

    @staticmethod
    def _wrap_step(result: _JobResult) -> DecodeStepResult:
        (token,) = result.job.tokens
        (probs,) = result.probabilities
        (output,) = result.outputs
        return DecodeStepResult(
            output=output,
            probabilities=probs,
            position=token.position,
            kv_length=probs.shape[-1],
            vector_cycles=result.vector_cycles,
            nonlinear_queries=result.nonlinear_queries,
            counters=result.counters,
        )

    # ------------------------------------------------------------------
    # Public execution modes.
    # ------------------------------------------------------------------

    def prefill(self, state: DecodeState) -> CausalPrefillResult:
        """Run the prompt through the cache as one packed causal job."""
        (result,), _ = self._execute([self._plan_prefill(state)])
        return self._wrap_prefill(result)

    def decode_step(
        self, state: DecodeState, x_t: np.ndarray
    ) -> DecodeStepResult:
        """Decode one token: append to the cache, attend, project out."""
        (result,), _ = self._execute([self._plan_step(state, x_t)])
        return self._wrap_step(result)

    def decode(self, request: DecodeRequest) -> DecodeResult:
        """Decode the prompt token by token (the pure decode regime).

        Every prompt token goes through :meth:`decode_step` with its own
        per-step hardware streams — the path the golden equivalence test
        compares bit-for-bit against :meth:`prefill`.
        """
        state = self.start(request)
        before = self.unit._lifetime_counters()
        steps = [self.decode_step(state, row) for row in request.x]
        return DecodeResult(
            steps=tuple(steps),
            outputs=np.stack([s.output for s in steps]),
            vector_cycles=sum(s.vector_cycles for s in steps),
            counters=self.unit._lifetime_counters().diff(before),
        )

    def generate(
        self,
        request: DecodeRequest,
        max_new_tokens: int | None = None,
        state: DecodeState | None = None,
    ) -> GenerateResult:
        """Prefill the prompt, then generate autoregressively.

        The attention output at the last position feeds back as the next
        token's embedding (deterministic closed loop — there is no
        vocabulary at the attention-layer level).  ``max_new_tokens``
        defaults to the request's budget; ``state`` optionally supplies
        a pre-opened state (e.g. with a recycled cache page).
        """
        new_tokens = (
            request.max_new_tokens
            if max_new_tokens is None
            else max_new_tokens
        )
        if new_tokens < 0:
            raise ValueError(
                f"max_new_tokens must be >= 0, got {new_tokens}"
            )
        # An override larger than the request's own budget must fail at
        # admission like any other over-long request, not mid-generation.
        if request.window is None and request.seq + new_tokens > request.capacity:
            raise KVCacheOverflow(
                f"generate needs {request.seq + new_tokens} cache slots "
                f"({request.seq} prompt + {new_tokens} new) but the "
                f"request's capacity is {request.capacity}; shorten "
                "max_new_tokens, raise max_seq_len, or set a sliding "
                "window"
            )
        if state is None:
            state = self.start(request)
        before = self.unit._lifetime_counters()
        pre = self.prefill(state)
        steps: list[DecodeStepResult] = []
        x_t = pre.outputs[-1]
        for _ in range(new_tokens):
            step = self.decode_step(state, x_t)
            steps.append(step)
            x_t = step.output
        generated = (
            np.stack([s.output for s in steps])
            if steps
            else np.zeros((0, request.hidden))
        )
        return GenerateResult(
            prefill=pre,
            steps=tuple(steps),
            generated=generated,
            vector_cycles=pre.vector_cycles
            + sum(s.vector_cycles for s in steps),
            counters=self.unit._lifetime_counters().diff(before),
        )


# ----------------------------------------------------------------------
# Continuous batching.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ContinuousBatchResult:
    """Outcome of a continuously batched decode run.

    ``results[i]`` is bit-identical (outputs, probabilities, per-step
    sequential-equivalent cycles and counters) to
    ``engine.generate(requests[i])`` run alone.  ``packed_vector_cycles``
    is what the shared overlay actually spent across all fused scheduler
    steps; ``sequential_vector_cycles`` is the sum of the per-request
    costs — the ratio is the continuous-batching win on the cycle side.
    ``pages_allocated`` / ``pages_recycled`` are this run's cache-page
    pool activity (per-run deltas: a reused scheduler still reports
    ``pages_allocated + pages_recycled == n_requests``; both are zero
    in paged mode, where the block pool replaces whole-page recycling).

    Memory-side accounting: ``peak_active`` is the most requests ever
    in flight at once (the admission-capacity metric the paged-vs-
    contiguous benchmark compares at a fixed pool byte budget);
    ``peak_kv_slots`` the most KV token slots reserved at once (whole
    worst-case pages in contiguous mode, allocated blocks in paged
    mode); ``peak_fragmentation_slots`` the worst reserved-but-unused
    slot count observed; ``deferrals`` / ``preemptions`` the paged
    scheduler's out-of-memory actions (always zero in contiguous mode);
    ``paging`` the final :meth:`~repro.core.paging.BlockPool.pool_info`
    snapshot (``None`` in contiguous mode).

    Per-request step timing (the serving layer's raw material):
    ``first_token_steps[i]`` / ``finish_steps[i]`` are the 0-based
    scheduler-step indices at which request ``i``'s prefill landed (its
    first visible token) and at which it completed; ``step_cycles[k]``
    is the packed vector cycles step ``k`` spent, so
    ``sum(step_cycles) == packed_vector_cycles``.
    ``first_token_times[i]`` / ``finish_times[i]`` are the same two
    events on the scheduler's **virtual clock** (cycles; idle gaps
    between arrivals included), which is what turns step indices into
    TTFT and latency.  A preempted-then-recomputed request keeps its
    *first* prefill landing (recomputation regenerates bit-identical
    tokens, so the user-visible first token never moves).
    """

    results: tuple[GenerateResult | SpeculativeGenerateResult, ...]
    packed_vector_cycles: int
    sequential_vector_cycles: int
    scheduler_steps: int
    counters: EventCounters
    pages_allocated: int
    pages_recycled: int
    peak_active: int = 0
    peak_kv_slots: int = 0
    peak_fragmentation_slots: int = 0
    deferrals: int = 0
    preemptions: int = 0
    paging: dict[str, int] | None = None
    first_token_steps: tuple[int, ...] = ()
    finish_steps: tuple[int, ...] = ()
    first_token_times: tuple[float, ...] = ()
    finish_times: tuple[float, ...] = ()
    step_cycles: tuple[int, ...] = ()

    @property
    def n_requests(self) -> int:
        """Requests served."""
        return len(self.results)

    @property
    def total_generated_tokens(self) -> int:
        """Tokens generated across every request (prompts excluded)."""
        return sum(r.n_generated for r in self.results)

    @property
    def packing_speedup(self) -> float:
        """Sequential vector cycles per packed vector cycle (>= 1)."""
        if self.packed_vector_cycles == 0:
            return 1.0
        return self.sequential_vector_cycles / self.packed_vector_cycles


class _Sequence:
    """Scheduler bookkeeping for one in-flight request.

    Structurally satisfies
    :class:`repro.serving.policies.SequenceView` — the read-only
    surface scheduling policies see.
    """

    __slots__ = (
        "index", "request", "state", "remaining", "next_x",
        "prefill_result", "steps", "admitted_at",
        "draft", "passes", "pending_pass",
        "arrival", "priority", "tenant", "deadline",
        "first_token_step", "finish_step",
        "first_token_time", "finish_time",
    )

    def __init__(
        self,
        index: int,
        request: DecodeRequest,
        meta: SequenceMeta | None = None,
    ) -> None:
        self.index = index
        self.request = request
        self.state: DecodeState | None = None
        self.remaining = request.max_new_tokens
        self.next_x: np.ndarray | None = None
        self.prefill_result: CausalPrefillResult | None = None
        self.steps: list[DecodeStepResult] = []
        self.admitted_at = -1
        # Speculative-mode state: the per-sequence draft model, the
        # completed verification passes, and the pass staged this step.
        self.draft: DraftModel | None = None
        self.passes: list[VerifyPassResult] = []
        self.pending_pass: _SpecPass | None = None
        # Serving metadata (virtual-clock times; defaults for plain
        # callers) and the step-timing record the metrics layer reads.
        meta = SequenceMeta() if meta is None else meta
        self.arrival = meta.arrival
        self.priority = meta.priority
        self.tenant = meta.tenant
        self.deadline = meta.deadline
        self.first_token_step = -1
        self.finish_step = -1
        self.first_token_time = -1.0
        self.finish_time = -1.0

    @property
    def live_state(self) -> DecodeState:
        """The admitted sequence's decode state (set at admission)."""
        assert self.state is not None
        return self.state

    @property
    def step_input(self) -> np.ndarray:
        """The next token embedding (set once the prefill lands)."""
        assert self.next_x is not None
        return self.next_x

    @property
    def finished_prefill(self) -> CausalPrefillResult:
        """The prefill result (set after the sequence's first step)."""
        assert self.prefill_result is not None
        return self.prefill_result

    def reset_progress(self) -> None:
        """Forget all progress (preemption by recomputation): the
        sequence restarts from its prompt when readmitted, reproducing
        bit-identical results because every step is deterministic.
        ``first_token_step``/``first_token_time`` survive on purpose:
        recomputation regenerates the same tokens, so the user-visible
        first token stays where it first landed."""
        self.state = None
        self.remaining = self.request.max_new_tokens
        self.next_x = None
        self.prefill_result = None
        self.steps = []
        self.admitted_at = -1
        self.passes = []
        self.pending_pass = None
        if self.draft is not None:
            self.draft.reset()


class ContinuousBatchScheduler:
    """Orca-style continuous batching over one :class:`NovaDecodeEngine`.

    Per scheduler step, the prefill rows of newly admitted requests and
    the decode rows of every in-flight request are fused into a single
    exp stream and a single reciprocal stream through the shared overlay
    (:meth:`NovaDecodeEngine._execute`), so lanes that one request would
    leave as tail padding carry another request's queries.  Requests
    join as slots free up (``max_active``) and leave the moment their
    budget is exhausted.

    Two memory models govern admission:

    * **Contiguous (default)** — every request gets a whole
      :class:`KVCache` page sized for its worst case; retired pages go
      to a pool keyed on head geometry and any page with
      ``capacity >= requested`` is recycled (best fit).  An optional
      ``pool_bytes`` budget caps total page bytes: admission defers
      until a page frees when the budget is exhausted.
    * **Paged** (``paged=True``) — all KV storage is fixed-size blocks
      (``block_size`` tokens, default
      ``engine.config.kv_block_size``) in one
      :class:`~repro.core.paging.BlockPool` shared by every request.
      Admission needs only the request's *first* block to fit; later
      blocks allocate lazily on append.  When the pool runs dry
      mid-step, the starved sequences **defer** (skip the step, retry
      after other sequences free blocks), and if *no* sequence can make
      progress the most recently admitted one is **preempted**: its
      blocks are freed and it restarts from its prompt later
      (recomputation is deterministic, so its final results are still
      bit-identical; the wasted work shows up only in
      ``packed_vector_cycles``).  The pool is sized from
      ``pool_blocks``, ``pool_bytes`` or — by default — large enough
      that no request ever defers.  ``prefix_caching=True`` (or the
      engine config's ``enable_prefix_caching``) additionally shares
      already-cached prompt blocks between requests: admission charges
      only *unshared* blocks (a request whose prefix is resident can
      enter a dry pool), prefills adopt shared blocks instead of
      re-writing them, and the first divergent append copies on write —
      N requests sharing a prefix prefill once and pay ~1/N the pool
      residency, with bit/cycle/counter-exact outputs.

    Outputs are bit-identical to running each request alone through
    :meth:`NovaDecodeEngine.generate` in **both** modes (checked by the
    serving experiments before any throughput is reported): paging and
    preemption change where K/V rows live and when work happens, never
    the numerics.

    ``speculative=True`` composes with either memory model: each active
    sequence's step becomes one draft-and-verify pass
    (:class:`~repro.core.speculative.SpeculativeDecodeEngine`, at the
    engine config's ``spec_k``/``spec_tree``/``draft_kind`` unless
    overridden — a ``spec_tree`` scores a whole draft tree per pass;
    one draft model per sequence via ``draft_factory``).  Verification
    passes of different requests fuse into the shared lane streams
    exactly like decode rows; a pass that cannot get provisional blocks
    degrades to draft-free before it defers, and per-request results
    (:class:`~repro.core.speculative.SpeculativeGenerateResult`) stay
    identical to solo speculative generation.

    Scheduling decisions — which waiting request to admit next, which
    active sequences run a step, and who is preempted — are delegated
    to a pluggable ``policy``
    (:class:`repro.serving.policies.SchedulingPolicy`).  The default,
    :class:`repro.serving.policies.FCFS`, pins the scheduler's
    historical behavior exactly: admission in queue order (input
    order; a preempted request rejoins at the *front* of the queue),
    every active sequence steps every scheduler step, and the
    forced-preemption victim is the most recently admitted sequence.
    Whatever the policy decides, each request's outputs, per-step
    sequential-equivalent cycles and event counters stay bit-identical
    to solo :meth:`NovaDecodeEngine.generate` — policies reorder *when*
    work happens, never what it computes.
    """

    def __init__(
        self,
        engine: NovaDecodeEngine,
        max_active: int = 8,
        *,
        paged: bool = False,
        block_size: int | None = None,
        pool_blocks: int | None = None,
        pool_bytes: int | None = None,
        prefix_caching: bool | None = None,
        speculative: bool = False,
        spec_k: int | None = None,
        spec_tree: str | None = None,
        draft_kind: str | None = None,
        draft_factory: Callable[[], DraftModel] | None = None,
        policy: SchedulingPolicy | None = None,
    ) -> None:
        if max_active < 1:
            raise ValueError(f"max_active must be >= 1, got {max_active}")
        if not paged:
            if block_size is not None or pool_blocks is not None:
                raise ValueError(
                    "block_size/pool_blocks only apply to the paged "
                    "scheduler (pass paged=True)"
                )
            if prefix_caching:
                raise ValueError(
                    "prefix_caching requires the paged scheduler "
                    "(pass paged=True)"
                )
        if pool_blocks is not None and pool_bytes is not None:
            raise ValueError("pass pool_blocks or pool_bytes, not both")
        if not speculative and (
            spec_k is not None
            or spec_tree is not None
            or draft_kind is not None
            or draft_factory is not None
        ):
            raise ValueError(
                "spec_k/spec_tree/draft_kind/draft_factory only apply to "
                "the speculative scheduler (pass speculative=True)"
            )
        self.engine = engine
        self.speculative = bool(speculative)
        self._speculator: SpeculativeDecodeEngine | None = None
        if self.speculative:
            from repro.core.speculative import (
                SpeculativeDecodeEngine,
                build_draft,
            )

            self._speculator = SpeculativeDecodeEngine(
                engine, spec_k=spec_k, tree=spec_tree
            )
            kind = (
                engine.config.draft_kind if draft_kind is None else draft_kind
            )
            #: One draft model per admitted sequence (drafts are
            #: stateful; sharing one across interleaved requests would
            #: break the solo-equivalence contract).
            self.draft_factory: Callable[[], DraftModel] = (
                (lambda: build_draft(kind, engine.config))
                if draft_factory is None
                else draft_factory
            )
        self.max_active = max_active
        self.paged = bool(paged)
        #: Prefix caching (paged only): ``None`` defers to the engine
        #: config's ``enable_prefix_caching`` knob; it only ever takes
        #: effect in paged mode (blocks are the sharing granularity).
        resolved_prefix = (
            engine.config.enable_prefix_caching
            if prefix_caching is None
            else bool(prefix_caching)
        )
        self.prefix_caching = bool(resolved_prefix and self.paged)
        self.block_size = (
            engine.config.kv_block_size if block_size is None else block_size
        )
        if self.block_size < 1:
            raise ValueError(
                f"block_size must be >= 1, got {self.block_size}"
            )
        self.pool_blocks = pool_blocks
        self.pool_bytes = pool_bytes
        if policy is None:
            # Imported lazily: repro.serving sits above repro.core in
            # the layering (it imports core at module scope), so the
            # default policy can only be pulled in at construction time.
            from repro.serving.policies import FCFS

            policy = FCFS()
        self.policy: SchedulingPolicy = policy
        #: The paged run's block pool (the last one, when reused).
        self.block_pool: BlockPool | None = None
        self._pool: dict[tuple[int, int], list[KVCache]] = {}
        self._page_bytes_allocated = 0
        self.pages_allocated = 0
        self.pages_recycled = 0
        self.deferrals = 0
        self.preemptions = 0

    def _require_speculator(self) -> SpeculativeDecodeEngine:
        """The speculative engine (constructed iff ``speculative=True``)."""
        assert self._speculator is not None
        return self._speculator

    # -- contiguous cache-page pool -------------------------------------

    @staticmethod
    def _page_bytes(n_heads: int, head_dim: int, tokens: int) -> int:
        """Bytes of one contiguous K+V page (float64)."""
        return 2 * 8 * n_heads * head_dim * tokens

    def _acquire_page(self, request: DecodeRequest) -> KVCache | None:
        """The best-fitting recycled page for ``request``, or None.

        Any pooled page with matching head geometry and
        ``capacity >= request.capacity`` can serve (the smallest such
        page is chosen) — exact-capacity keying stranded every page
        whose geometry didn't match the next request precisely.
        """
        pages = self._pool.get((request.n_heads, request.head_dim))
        if pages:
            fits = [
                i for i, page in enumerate(pages)
                if page.capacity >= request.capacity
            ]
            if fits:
                best = min(fits, key=lambda i: pages[i].capacity)
                self.pages_recycled += 1
                return pages.pop(best)
        return None

    def _release_page(self, cache: KVCacheLike) -> None:
        # Only the contiguous scheduler retires pages here; paged-mode
        # caches hand their blocks back through ``reset()`` instead.
        assert isinstance(cache, KVCache)
        cache.reset()
        self._pool.setdefault(
            (cache.n_heads, cache.head_dim), []
        ).append(cache)

    def _reclaim_page_bytes(self, need: int) -> None:
        """Deallocate idle pooled pages until ``need`` more bytes fit.

        A recycled page only serves a request its capacity covers, so a
        pool full of too-small (or wrong-geometry) pages would strand
        budget bytes forever; under pressure those idle pages are
        simply freed — their bytes return to the budget, exactly as a
        real allocator would release cached pages.  Smallest pages go
        first (they are the least likely to serve a future request).
        """
        budget = self.pool_bytes
        assert budget is not None  # only called under a byte budget
        idle = [
            (page.capacity, key, page)
            for key, pages in self._pool.items()
            for page in pages
        ]
        idle.sort(key=lambda entry: entry[0])
        for _, key, page in idle:
            if self._page_bytes_allocated + need <= budget:
                return
            self._pool[key].remove(page)
            self._page_bytes_allocated -= self._page_bytes(
                page.n_heads, page.head_dim, page.capacity
            )

    def _open_contiguous(self, request: DecodeRequest) -> DecodeState | None:
        """Admit one request in contiguous mode (None = defer: the page
        budget is exhausted until an in-flight request retires)."""
        page = self._acquire_page(request)
        if page is not None:
            return self.engine.start(request, cache=page)
        need = self._page_bytes(
            request.n_heads, request.head_dim, request.capacity
        )
        if self.pool_bytes is not None:
            if self._page_bytes_allocated + need > self.pool_bytes:
                self._reclaim_page_bytes(need)
            if self._page_bytes_allocated + need > self.pool_bytes:
                return None
        self._page_bytes_allocated += need
        self.pages_allocated += 1
        return self.engine.start(request)

    # -- the scheduling loop --------------------------------------------

    def _build_pool(self, requests: Sequence[DecodeRequest]) -> BlockPool:
        """The paged run's :class:`~repro.core.paging.BlockPool`."""
        from repro.core.paging import (
            BlockPool,
            BlockPoolExhausted,
            worst_case_blocks,
        )

        n_heads = requests[0].n_heads
        head_dim = requests[0].head_dim
        for request in requests:
            if (request.n_heads, request.head_dim) != (n_heads, head_dim):
                raise ValueError(
                    "paged serving shares one block pool, so every request "
                    f"must agree on head geometry; got {n_heads}x{head_dim} "
                    f"and {request.n_heads}x{request.head_dim}"
                )
        bs = self.block_size
        worst = [
            worst_case_blocks(r.total_tokens, r.window, bs)
            for r in requests
        ]
        if self.pool_blocks is not None:
            pool = BlockPool(n_heads, head_dim, bs, self.pool_blocks)
        elif self.pool_bytes is not None:
            pool = BlockPool.from_bytes(
                n_heads, head_dim, bs, self.pool_bytes
            )
        else:
            # Auto-size: room for every request's worst case at once, so
            # the default path never defers or preempts.
            pool = BlockPool(n_heads, head_dim, bs, sum(worst))
        for request, need in zip(requests, worst):
            if need > pool.n_blocks:
                raise BlockPoolExhausted(
                    f"request needs {need} blocks of {bs} tokens even "
                    f"running alone, but the pool only has "
                    f"{pool.n_blocks}; raise pool_blocks/pool_bytes or "
                    "the block size"
                )
        return pool

    def _prefix_cached_blocks(
        self, request: DecodeRequest, pool: BlockPool
    ) -> int:
        """Leading prompt blocks the pool already caches (read-only).

        The admission estimate of what
        :meth:`~repro.core.paging.PagedKVCache.adopt_prefix` would
        adopt: no counters move and no references are taken.  Windowed
        requests never adopt, so they always report 0.
        """
        if request.window is not None:
            return 0
        from repro.core.paging import prefix_block_keys

        return pool.probe_prefix(
            prefix_block_keys(
                request.x, request.wk, request.wv,
                request.n_heads, pool.block_size,
            )
        )

    def _preempt(self, victim: _Sequence) -> None:
        """Evict one in-flight sequence (preemption by recomputation).

        Its cache memory is returned — blocks to the shared pool in
        paged mode, the whole page to the recycle pool in contiguous
        mode — and all progress is forgotten; when readmitted it
        replays from its prompt, deterministically reproducing
        bit-identical results.
        """
        cache = victim.live_state.cache
        if self.paged:
            cache.reset()  # blocks straight back to the shared pool
        else:
            self._release_page(cache)
        victim.reset_progress()
        self.preemptions += 1

    def run(
        self,
        requests: Iterable[DecodeRequest],
        meta: Sequence[SequenceMeta] | None = None,
    ) -> ContinuousBatchResult:
        """Serve every request to completion, continuously batched.

        ``meta`` optionally attaches one :class:`SequenceMeta` per
        request (arrival time on the virtual clock, priority, tenant,
        deadline) — the front door's interface.  Without it every
        request is present at cycle 0 with default metadata, and the
        virtual clock is invisible: the run is step-for-step identical
        to the pre-metadata scheduler.
        """
        from repro.core.paging import BlockPoolExhausted

        request_list = tuple(requests)
        if not request_list:
            raise ValueError("need at least one decode request")
        if meta is None:
            metas: tuple[SequenceMeta, ...] = tuple(
                SequenceMeta() for _ in request_list
            )
        else:
            metas = tuple(meta)
            if len(metas) != len(request_list):
                raise ValueError(
                    f"got {len(metas)} SequenceMeta entries for "
                    f"{len(request_list)} requests"
                )
        for request in request_list:
            self.engine.validate_request(request)

        engine = self.engine
        paged = self.paged
        pool: BlockPool | None = None
        if paged:
            pool = self._build_pool(request_list)
            self.block_pool = pool
        elif self.pool_bytes is not None:
            for request in request_list:
                need = self._page_bytes(
                    request.n_heads, request.head_dim, request.capacity
                )
                if need > self.pool_bytes:
                    raise BlockPoolExhausted(
                        f"request needs a {need}-byte page even running "
                        f"alone, but pool_bytes is {self.pool_bytes}"
                    )

        before = engine.unit._lifetime_counters()
        pages_allocated_before = self.pages_allocated
        pages_recycled_before = self.pages_recycled
        deferrals_before = self.deferrals
        preemptions_before = self.preemptions
        sequences = tuple(
            _Sequence(i, request, meta=m)
            for i, (request, m) in enumerate(zip(request_list, metas))
        )
        waiting = deque(sequences)
        active: list[_Sequence] = []
        slots: list[GenerateResult | SpeculativeGenerateResult | None] = (
            [None] * len(request_list)
        )
        policy = self.policy
        packed_cycles = 0
        scheduler_steps = 0
        admission_clock = 0
        peak_active = 0
        peak_kv_slots = 0
        peak_fragmentation = 0
        #: The run's virtual clock, in cycles: advances by each step's
        #: packed vector cycles and jumps over idle gaps to the next
        #: arrival.  Fully determined by the workload and the engine's
        #: cycle accounting — never by the host (NV008).
        now = 0.0
        step_cycles: list[int] = []

        while waiting or active:
            arrived = [s for s in waiting if s.arrival <= now]
            # Policy-initiated (voluntary) preemption, e.g. a
            # higher-priority arrival displacing a low-priority
            # sequence when every slot is taken.  The victim's memory
            # frees immediately; it rejoins the front of the queue.
            if active and arrived:
                free_slots = self.max_active - len(active)
                victims = list(
                    policy.preemptions(arrived, active, now, free_slots)
                )
                for victim in victims:
                    if victim not in active:
                        raise ValueError(
                            f"policy {policy.name!r} named a preemption "
                            "victim that is not an active sequence"
                        )
                    active.remove(victim)
                    self._preempt(victim)
                    waiting.appendleft(victim)

            jobs: list[_Job] = []
            joining: list[_Sequence] = []
            stepping: list[_Sequence] = []
            # Decode first: running sequences have priority over
            # admission for whatever blocks are free (otherwise a
            # preempted-then-readmitted request could steal the very
            # blocks its preemption freed and starve older sequences —
            # a livelock).  A dry pool defers the starved sequence to
            # the next step.  In speculative mode an in-flight
            # sequence's "step" is a whole verification pass (drafts
            # appended provisionally, planned atomically); it degrades
            # to a draft-free pass before it defers.  The policy picks
            # which active sequences run this step (normally all).
            scheduled = list(policy.step_order(active, now))
            for seq in scheduled:
                if seq not in active:
                    raise ValueError(
                        f"policy {policy.name!r} scheduled a sequence "
                        "that is not active"
                    )
            for seq in scheduled:
                if self.speculative:
                    try:
                        pending = self._require_speculator().plan_with_fallback(
                            seq.live_state, seq.step_input, seq.remaining,
                            draft=seq.draft,
                        )
                    except BlockPoolExhausted:
                        self.deferrals += 1
                        continue
                    seq.pending_pass = pending
                    job = pending.job
                elif paged:
                    try:
                        job = engine._plan_step(seq.live_state, seq.step_input)
                    except BlockPoolExhausted:
                        self.deferrals += 1
                        continue
                else:
                    job = engine._plan_step(seq.live_state, seq.step_input)
                jobs.append(job)
                stepping.append(seq)
            # Admission: fill the remaining slots with waiting requests'
            # prefills.  The policy picks the next candidate from the
            # *arrived* waiting requests (queue order preserved); the
            # first candidate that cannot get memory ends admission for
            # this step (deferral).  Paged mode admits whenever the
            # request's first block fits (free blocks >= 1) and rolls
            # the prefill back — deferring the request — if the pool
            # runs dry mid-prompt.
            while waiting and len(active) + len(joining) < self.max_active:
                arrived = [s for s in waiting if s.arrival <= now]
                if not arrived:
                    break
                seq = policy.admit_next(arrived, active + joining, now)
                if seq is None:
                    break
                if seq not in arrived:
                    raise ValueError(
                        f"policy {policy.name!r} admitted a sequence that "
                        "is not waiting-and-arrived"
                    )
                if pool is not None:
                    # Admission charges only *unshared* blocks: a
                    # request whose leading prompt blocks are already
                    # cached can enter a dry pool — its prefill adopts
                    # those blocks instead of allocating, and if the
                    # unshared remainder runs the pool dry mid-prompt
                    # the ordinary rollback-and-defer path below
                    # applies.
                    if pool.free_blocks < 1 and not (
                        self.prefix_caching
                        and self._prefix_cached_blocks(seq.request, pool)
                    ):
                        break
                    state = engine.start(
                        seq.request, pool=pool, prefix=self.prefix_caching
                    )
                else:
                    state = self._open_contiguous(seq.request)
                    if state is None:
                        break
                waiting.remove(seq)
                seq.state = state
                if self.speculative and seq.draft is None:
                    seq.draft = self.draft_factory()
                admission_clock += 1
                seq.admitted_at = admission_clock
                if paged:
                    try:
                        job = engine._plan_prefill(state)
                    except BlockPoolExhausted:
                        state.cache.reset()
                        seq.reset_progress()
                        self.deferrals += 1
                        waiting.appendleft(seq)
                        break
                else:
                    job = engine._plan_prefill(state)
                jobs.append(job)
                joining.append(seq)

            if not jobs:
                if active:
                    # Every in-flight sequence is starved: the policy
                    # picks a preemption victim (FCFS: the most
                    # recently admitted — recomputation frees its
                    # blocks now, it restarts from the prompt).
                    victim = policy.select_victim(active, now)
                    if victim not in active:
                        raise ValueError(
                            f"policy {policy.name!r} named a preemption "
                            "victim that is not an active sequence"
                        )
                    active.remove(victim)
                    self._preempt(victim)
                    waiting.appendleft(victim)
                    continue
                if all(s.arrival > now for s in waiting):
                    # Idle: nothing in flight and nothing has arrived
                    # yet — jump the virtual clock to the next arrival.
                    now = min(s.arrival for s in waiting)
                    continue
                raise BlockPoolExhausted(
                    "scheduler wedged: no request fits the memory budget "
                    "even with nothing in flight"
                )

            scheduler_steps += 1
            in_flight = joining + active
            peak_active = max(peak_active, len(in_flight))
            if pool is not None:
                peak_kv_slots = max(
                    peak_kv_slots, pool.in_use * pool.block_size
                )
                peak_fragmentation = max(
                    peak_fragmentation, pool.fragmentation_slots
                )
            else:
                peak_kv_slots = max(
                    peak_kv_slots,
                    sum(s.live_state.cache.capacity for s in in_flight),
                )
                peak_fragmentation = max(
                    peak_fragmentation,
                    sum(s.live_state.cache.fragmentation_slots
                        for s in in_flight),
                )

            results, cycles = engine._execute(jobs)
            packed_cycles += cycles
            step_cycles.append(cycles)
            now += float(cycles)
            step_index = scheduler_steps - 1

            for seq, result in zip(stepping + joining, results):
                if seq.prefill_result is None:
                    prefill = engine._wrap_prefill(result)
                    seq.prefill_result = prefill
                    seq.next_x = prefill.outputs[-1]
                    if seq.first_token_step < 0:
                        # The prefill's last output is the request's
                        # first visible token; preserved across
                        # preemption (recomputation replays the same
                        # token), so TTFT is the first landing.
                        seq.first_token_step = step_index
                        seq.first_token_time = now
                    if self.speculative:
                        draft = seq.draft
                        assert draft is not None  # built at admission
                        # Seed the draft with the prompt trajectory, in
                        # the exact order solo speculative generate does.
                        for position, (x_row, out_row) in enumerate(
                            zip(seq.request.x, prefill.outputs)
                        ):
                            draft.observe(x_row, out_row, position)
                elif self.speculative:
                    staged = seq.pending_pass
                    assert staged is not None  # planned this very step
                    new_steps, pass_result = (
                        self._require_speculator().finish_verify_pass(
                            staged, result, draft=seq.draft
                        )
                    )
                    seq.pending_pass = None
                    seq.steps.extend(new_steps)
                    seq.passes.append(pass_result)
                    seq.next_x = new_steps[-1].output
                    seq.remaining -= len(new_steps)
                else:
                    step = engine._wrap_step(result)
                    seq.steps.append(step)
                    seq.next_x = step.output
                    seq.remaining -= 1

            survivors: list[_Sequence] = []
            for seq in joining + active:
                if seq.remaining > 0:
                    survivors.append(seq)
                    continue
                seq.finish_step = step_index
                seq.finish_time = now
                if paged:
                    seq.live_state.cache.reset()  # blocks back to the pool
                else:
                    self._release_page(seq.live_state.cache)
                generated = (
                    np.stack([s.output for s in seq.steps])
                    if seq.steps
                    else np.zeros((0, seq.request.hidden))
                )
                if self.speculative:
                    from repro.core.speculative import (
                        SpeculativeGenerateResult,
                    )

                    counters = seq.finished_prefill.counters
                    for pass_result in seq.passes:
                        counters = counters.merge(pass_result.counters)
                    slots[seq.index] = SpeculativeGenerateResult(
                        prefill=seq.finished_prefill,
                        steps=tuple(seq.steps),
                        passes=tuple(seq.passes),
                        generated=generated,
                        vector_cycles=seq.finished_prefill.vector_cycles
                        + sum(p.vector_cycles for p in seq.passes),
                        sequential_vector_cycles=(
                            seq.finished_prefill.vector_cycles
                            + sum(s.vector_cycles for s in seq.steps)
                        ),
                        counters=counters,
                    )
                    continue
                counters = seq.finished_prefill.counters
                for step in seq.steps:
                    counters = counters.merge(step.counters)
                slots[seq.index] = GenerateResult(
                    prefill=seq.finished_prefill,
                    steps=tuple(seq.steps),
                    generated=generated,
                    vector_cycles=seq.finished_prefill.vector_cycles
                    + sum(s.vector_cycles for s in seq.steps),
                    counters=counters,
                )
            active = survivors

        finished: list[GenerateResult | SpeculativeGenerateResult] = []
        for slot in slots:
            assert slot is not None  # the loop only exits once every slot fills
            finished.append(slot)
        sequential_cycles = sum(r.vector_cycles for r in finished)
        return ContinuousBatchResult(
            results=tuple(finished),
            packed_vector_cycles=packed_cycles,
            sequential_vector_cycles=sequential_cycles,
            scheduler_steps=scheduler_steps,
            counters=engine.unit._lifetime_counters().diff(before),
            pages_allocated=self.pages_allocated - pages_allocated_before,
            pages_recycled=self.pages_recycled - pages_recycled_before,
            peak_active=peak_active,
            peak_kv_slots=peak_kv_slots,
            peak_fragmentation_slots=peak_fragmentation,
            deferrals=self.deferrals - deferrals_before,
            preemptions=self.preemptions - preemptions_before,
            paging=pool.pool_info() if pool is not None else None,
            first_token_steps=tuple(s.first_token_step for s in sequences),
            finish_steps=tuple(s.finish_step for s in sequences),
            first_token_times=tuple(s.first_token_time for s in sequences),
            finish_times=tuple(s.finish_time for s in sequences),
            step_cycles=tuple(step_cycles),
        )
