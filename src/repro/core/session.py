"""NovaSession: the one typed front door to every NOVA execution mode.

A session owns one :class:`~repro.core.config.NovaConfig` geometry and
exposes the four ways this reproduction executes work on it:

* :meth:`NovaSession.attention_layer` — the cycle-accurate reference
  (:class:`~repro.core.attention.NovaAttentionEngine`): one request,
  every non-linear query driven beat-by-beat through the NoC model.
* :meth:`NovaSession.serve` — the batched serving path
  (:class:`~repro.core.batched_attention.BatchedNovaAttentionEngine`):
  many requests lane-packed through one shared overlay, bit-exact and
  counter-exact against the reference.
* :meth:`NovaSession.decode` / :meth:`NovaSession.generate` /
  :meth:`NovaSession.serve_decode` — autoregressive decode over a KV
  cache (:class:`~repro.core.decode.NovaDecodeEngine`), one-at-a-time
  or continuously batched, bit-exact against the causal prefill.
* :meth:`NovaSession.serve_async` — the async serving front door
  (:class:`~repro.serving.frontdoor.FrontDoor`): streaming requests
  with arrivals/priorities/tenants/deadlines on a deterministic
  virtual clock, scheduled by a pluggable policy, reported as SLOs.
* :meth:`NovaSession.unit` — raw vector-unit access: a
  :class:`~repro.core.vector_unit.NovaVectorUnit` compiled for any
  registered non-linear function at the session geometry.

Engines are built lazily and cached per session; the compile-time state
they share — trained PWL tables (:mod:`repro.approx.table_cache`) and
frozen broadcast schedules (:class:`~repro.core.mapper.NovaMapper`) —
lives in the process-wide caches, so any number of sessions at the same
geometry reuse one copy (:meth:`cache_info` reports both).

Typical use::

    from repro import NovaSession

    session = NovaSession("jetson-nx")          # a Table II preset...
    session = NovaSession(NovaConfig(n_routers=4, neurons_per_router=64))
    result = session.attention_layer(x, wq, wk, wv, wo, n_heads=2)
    batch = session.serve(requests)             # BatchedAttentionResult
    unit = session.unit("gelu")                 # NovaVectorUnit
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping, Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.approx.table_cache import table_cache_info
from repro.core.attention import AttentionLayerResult, NovaAttentionEngine
from repro.core.batched_attention import (
    AttentionRequest,
    BatchedAttentionResult,
    BatchedNovaAttentionEngine,
)
from repro.core.config import NovaConfig, as_config
from repro.core.decode import (
    ContinuousBatchResult,
    ContinuousBatchScheduler,
    DecodeRequest,
    DecodeResult,
    GenerateResult,
    NovaDecodeEngine,
)
from repro.core.mapper import NovaMapper
from repro.core.vector_unit import NovaVectorUnit

if TYPE_CHECKING:
    from repro.accelerators import HostAccelerator
    from repro.core.speculative import (
        DraftModel,
        SpeculativeDecodeEngine,
        SpeculativeGenerateResult,
    )
    from repro.serving.frontdoor import ServingRequest
    from repro.serving.metrics import ServingReport
    from repro.serving.policies import SchedulingPolicy

__all__ = ["NovaSession"]


class NovaSession:
    """One NOVA geometry, every execution mode behind a single API.

    ``config`` is a :class:`NovaConfig`, a preset name from
    :data:`repro.core.config.PRESETS`, a mapping of fields, or ``None``
    for the defaults.
    """

    def __init__(
        self, config: NovaConfig | str | Mapping[str, object] | None = None
    ) -> None:
        self._config = as_config(config)
        self._reference: NovaAttentionEngine | None = None
        self._server: BatchedNovaAttentionEngine | None = None
        self._decoder: NovaDecodeEngine | None = None
        self._speculator: SpeculativeDecodeEngine | None = None
        self._units: dict[str, NovaVectorUnit] = {}

    # ------------------------------------------------------------------
    # Geometry.
    # ------------------------------------------------------------------

    @property
    def config(self) -> NovaConfig:
        """The session's immutable geometry."""
        return self._config

    @property
    def n_lanes(self) -> int:
        """Total approximator lanes of the session geometry."""
        return self._config.n_lanes

    def build_host(self) -> "HostAccelerator":
        """The geometry's host accelerator (requires ``config.host``)."""
        return self._config.build_host()

    # ------------------------------------------------------------------
    # Mode 1: cycle-accurate reference.
    # ------------------------------------------------------------------

    @property
    def reference(self) -> NovaAttentionEngine:
        """The cycle-accurate single-request engine (built lazily)."""
        if self._reference is None:
            self._reference = NovaAttentionEngine(self._config)
        return self._reference

    def attention_layer(
        self,
        x: np.ndarray,
        wq: np.ndarray,
        wk: np.ndarray,
        wv: np.ndarray,
        wo: np.ndarray,
        n_heads: int,
    ) -> AttentionLayerResult:
        """One multi-head self-attention layer, cycle-accurately."""
        return self.reference.attention_layer(x, wq, wk, wv, wo, n_heads)

    def exact_attention_layer(
        self,
        x: np.ndarray,
        wq: np.ndarray,
        wk: np.ndarray,
        wv: np.ndarray,
        wo: np.ndarray,
        n_heads: int,
    ) -> np.ndarray:
        """The float reference of :meth:`attention_layer`."""
        return self.reference.exact_attention_layer(x, wq, wk, wv, wo, n_heads)

    def softmax(self, scores: np.ndarray) -> tuple[np.ndarray, int]:
        """Hardware softmax over the last axis (reference engine)."""
        return self.reference.softmax(scores)

    def gelu(self, values: np.ndarray) -> tuple[np.ndarray, int]:
        """Hardware GeLU (reference engine)."""
        return self.reference.gelu(values)

    # ------------------------------------------------------------------
    # Mode 2: batched serving.
    # ------------------------------------------------------------------

    @property
    def server(self) -> BatchedNovaAttentionEngine:
        """The batched serving engine (built lazily)."""
        if self._server is None:
            self._server = BatchedNovaAttentionEngine(self._config)
        return self._server

    def serve(
        self,
        requests: Sequence[AttentionRequest] | Iterable[AttentionRequest],
    ) -> BatchedAttentionResult:
        """Serve a batch of attention requests on the shared overlay."""
        return self.server.attention_batch(requests)

    # ------------------------------------------------------------------
    # Mode 3: autoregressive decode (KV cache + continuous batching).
    # ------------------------------------------------------------------

    @property
    def decoder(self) -> NovaDecodeEngine:
        """The KV-cached decode engine (built lazily).

        Tables are compiled once when the engine is first built; decode
        steps only retarget the shared unit, so :meth:`cache_info`'s
        table-cache misses stay flat no matter how many tokens are
        decoded (the suite pins this).
        """
        if self._decoder is None:
            self._decoder = NovaDecodeEngine(self._config)
        return self._decoder

    def decode(self, request: DecodeRequest) -> DecodeResult:
        """Decode ``request``'s prompt token by token over a KV cache.

        Every token runs as its own incremental step — the pure decode
        regime, bit-exact against :meth:`NovaDecodeEngine.prefill` for
        the same causal sequence.  Rejects non-causal requests
        (``ValueError``): decode is only defined when token ``t``
        attends to the cache of tokens ``<= t``.
        """
        return self.decoder.decode(request)

    @property
    def speculator(self) -> "SpeculativeDecodeEngine":
        """The speculative draft-and-verify engine (built lazily).

        A :class:`~repro.core.speculative.SpeculativeDecodeEngine`
        wrapping :attr:`decoder` (same unit, tables and caches) at the
        session config's ``spec_k`` / ``draft_kind`` defaults.
        """
        if self._speculator is None:
            from repro.core.speculative import SpeculativeDecodeEngine

            self._speculator = SpeculativeDecodeEngine(self.decoder)
        return self._speculator

    def generate(
        self,
        request: DecodeRequest,
        max_new_tokens: int | None = None,
        *,
        speculative: bool = False,
        spec_k: int | None = None,
        spec_tree: str | None = None,
        draft: "DraftModel | None" = None,
    ) -> "GenerateResult | SpeculativeGenerateResult":
        """Prefill the prompt, then generate tokens autoregressively.

        ``max_new_tokens`` defaults to the request's own budget.  The
        attention output at the last position feeds back as the next
        token's embedding (there is no vocabulary at the
        attention-layer level).  Rejects non-causal requests.

        ``speculative=True`` generates the **bit-identical** tokens by
        draft-and-verify instead (:mod:`repro.core.speculative`): the
        config's ``draft_kind`` drafts up to ``spec_k`` tokens per
        packed verification pass (both defaulting from the session
        config; ``draft`` substitutes any
        :class:`~repro.core.speculative.DraftModel`), returning a
        :class:`~repro.core.speculative.SpeculativeGenerateResult` with
        acceptance and rollback accounting.  ``spec_tree`` (a
        ``"2x2,1x4"``-style spec, defaulting from the config) scores a
        whole :class:`~repro.core.speculative.DraftTree` of alternative
        drafts per pass instead of one linear chain — still
        bit-identical, for any tree.
        """
        if not speculative:
            if spec_k is not None or spec_tree is not None or draft is not None:
                raise ValueError(
                    "spec_k/spec_tree/draft only apply to speculative "
                    "generation (pass speculative=True)"
                )
            return self.decoder.generate(
                request, max_new_tokens=max_new_tokens
            )
        if spec_k is None and spec_tree is None and draft is None:
            engine = self.speculator
        else:
            from repro.core.speculative import SpeculativeDecodeEngine

            engine = SpeculativeDecodeEngine(
                self.decoder, draft=draft, spec_k=spec_k, tree=spec_tree
            )
        return engine.generate(request, max_new_tokens=max_new_tokens)

    def serve_decode(
        self,
        requests: Sequence[DecodeRequest] | Iterable[DecodeRequest],
        max_active: int = 8,
        *,
        paged: bool = False,
        block_size: int | None = None,
        pool_blocks: int | None = None,
        pool_bytes: int | None = None,
        prefix_caching: bool | None = None,
        speculative: bool = False,
        spec_k: int | None = None,
        spec_tree: str | None = None,
        draft_kind: str | None = None,
        draft_factory: "Callable[[], DraftModel] | None" = None,
    ) -> ContinuousBatchResult:
        """Serve decode requests with continuous batching.

        A fresh :class:`ContinuousBatchScheduler` (so pool statistics
        are per call) drives the session's decode engine; results are
        bit-identical to per-request :meth:`generate` in either memory
        mode.  ``paged=True`` swaps the per-request worst-case cache
        pages for a shared :class:`~repro.core.paging.BlockPool` of
        fixed-size blocks (``block_size`` defaults to the session
        config's ``kv_block_size``); ``pool_blocks`` / ``pool_bytes``
        cap the pool, enabling deferral/preemption under memory
        pressure — by default it is sized so nothing ever defers.
        ``prefix_caching`` (paged only; ``None`` defers to the config's
        ``enable_prefix_caching``) shares already-cached prompt blocks
        between requests under refcounts with copy-on-write, charging
        admission only for unshared blocks — a pure residency win, the
        hit/share counters land in the result's ``paging`` dict.
        ``speculative=True`` replaces each in-flight decode row with a
        draft-and-verify pass (``spec_k`` drafts per pass — or a whole
        ``spec_tree`` draft tree per pass — one ``draft_kind`` model
        per sequence, or ``draft_factory()`` models), composing with
        either memory mode and still bit-identical to solo
        :meth:`generate` per request.
        """
        scheduler = ContinuousBatchScheduler(
            self.decoder, max_active=max_active, paged=paged,
            block_size=block_size, pool_blocks=pool_blocks,
            pool_bytes=pool_bytes, prefix_caching=prefix_caching,
            speculative=speculative,
            spec_k=spec_k, spec_tree=spec_tree, draft_kind=draft_kind,
            draft_factory=draft_factory,
        )
        return scheduler.run(requests)

    def serve_async(
        self,
        trace: "Sequence[ServingRequest]",
        *,
        policy: "str | SchedulingPolicy" = "fcfs",
        max_active: int = 8,
        paged: bool = False,
        block_size: int | None = None,
        pool_blocks: int | None = None,
        pool_bytes: int | None = None,
        prefix_caching: bool | None = None,
        speculative: bool = False,
        spec_k: int | None = None,
        spec_tree: str | None = None,
        draft_kind: str | None = None,
        draft_factory: "Callable[[], DraftModel] | None" = None,
    ) -> "ServingReport":
        """Serve streaming requests through the async front door.

        ``trace`` is a sequence of
        :class:`~repro.serving.frontdoor.ServingRequest` envelopes —
        each a decode request plus arrival time, priority, tenant and
        optional deadline on the scheduler's deterministic **virtual
        clock** (build one by hand or with
        :func:`repro.serving.arrivals.build_trace`).  ``policy`` picks
        the scheduling policy by registry name
        (:data:`repro.serving.policies.POLICIES`: ``"fcfs"``,
        ``"priority-preemptive"``, ``"slo-aware"``, ``"tenant-fair"``)
        or takes a policy object; the remaining knobs mirror
        :meth:`serve_decode`.  Returns the JSON-serializable
        :class:`~repro.serving.metrics.ServingReport` (TTFT/latency
        percentiles, goodput, deferral/preemption rates).  Whatever
        the policy decides, per-request outputs stay bit-identical to
        solo :meth:`generate`.
        """
        from repro.serving.frontdoor import FrontDoor

        door = FrontDoor(
            self.decoder,
            policy=policy,
            max_active=max_active,
            paged=paged,
            block_size=block_size,
            pool_blocks=pool_blocks,
            pool_bytes=pool_bytes,
            prefix_caching=prefix_caching,
            speculative=speculative,
            spec_k=spec_k,
            spec_tree=spec_tree,
            draft_kind=draft_kind,
            draft_factory=draft_factory,
        )
        return door.serve(trace)

    # ------------------------------------------------------------------
    # Mode 4: raw vector-unit access.
    # ------------------------------------------------------------------

    def unit(self, function: str) -> NovaVectorUnit:
        """A vector unit compiled for ``function`` at this geometry.

        ``function`` is any registered non-linear function name
        (``repro.approx.functions.FUNCTIONS``); its table comes from the
        process-wide compiled-table cache at the session's ``n_segments``
        and ``seed``.  One unit is built per function per session and
        returned again on later calls.
        """
        cached = self._units.get(function)
        if cached is None:
            cached = NovaVectorUnit(self._config.table(function), self._config)
            self._units[function] = cached
        return cached

    # ------------------------------------------------------------------
    # Shared compile-time caches.
    # ------------------------------------------------------------------

    @staticmethod
    def cache_info() -> dict[str, object]:
        """Process-wide compile-cache statistics the session relies on.

        ``tables`` reports the compiled-table cache
        (:func:`repro.approx.table_cache.table_cache_info`): engines
        compile their tables exactly once at construction, so steady
        state shows cache *hits*, never new misses — in particular the
        decode path must not add a miss per decode step (retargeting
        swaps the table already held by the engine; a test pins the
        miss count flat across steps).  ``schedules`` is the shared
        frozen-:class:`~repro.core.mapper.BroadcastSchedule` count.
        ``paging`` aggregates every live KV
        :class:`~repro.core.paging.BlockPool`
        (:func:`repro.core.paging.pool_cache_info`): block residency,
        live tokens, the fragmentation metric (allocated-but-unused
        token slots; negative under prefix sharing) and the
        prefix-caching counters (``prefix_hits`` / ``prefix_misses`` /
        ``blocks_shared`` / ``cow_copies`` / ``shared_block_refs``).
        ``kernels`` reports the execution-backend registry
        (:func:`repro.core.kernels.kernel_cache_info`): which backends
        are registered vs actually importable here, and per-backend
        kernel launch / element tallies.
        """
        from repro.core.kernels import kernel_cache_info
        from repro.core.paging import pool_cache_info

        return {
            "tables": table_cache_info(),
            "schedules": NovaMapper.schedule_cache_size(),
            "paging": pool_cache_info(),
            "kernels": kernel_cache_info(),
        }

    def __repr__(self) -> str:
        cfg = self._config
        return (
            f"NovaSession({cfg.n_routers}x{cfg.neurons_per_router} lanes @ "
            f"{cfg.pe_frequency_ghz:g} GHz, hop {cfg.hop_mm:g} mm, "
            f"{cfg.n_segments} segments"
            + (f", host={cfg.host!r}" if cfg.host else "")
            + ")"
        )
