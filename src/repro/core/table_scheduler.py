"""Multi-function table scheduling: running whole models on one overlay.

A transformer layer needs *several* non-linear functions in sequence —
softmax's exp, the FFN's GeLU, LayerNorm's rsqrt (paper §IV trains one
MLP per function).  The vector unit therefore has to switch tables
between phases, and here the architectures genuinely differ:

* **NOVA** rebroadcasts the active table every lookup anyway — the table
  lives on the wires — so switching functions costs **zero cycles**: the
  mapper simply feeds different beats.
* **LUT baselines** hold the table in SRAM; switching means rewriting
  every bank (16 entries x 2 words through a single write port = 32
  write cycles per bank, banks in parallel), stalling the unit.

This module schedules an op graph's non-linear phases onto a unit kind
and accounts for those reload stalls — the ablation the paper's "NOVA
mapper schedules the cycle-by-cycle operation" paragraph implies but
never quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.approx.quantize import QuantizedPwl
from repro.workloads.ops import NonLinearOp, OpGraph

__all__ = [
    "reconfiguration_cycles",
    "PhaseRecord",
    "ScheduleReport",
    "TableScheduler",
]


def reconfiguration_cycles(unit_kind: str, n_segments: int) -> int:
    """Stall cycles to switch the active function on one unit kind.

    LUT banks are rewritten entry by entry through their (single) write
    port: ``n_segments * 2`` word writes; all banks of a unit reload in
    parallel (they hold identical contents).  NOVA needs none.
    """
    if unit_kind == "nova":
        return 0
    if unit_kind in ("per_neuron_lut", "per_core_lut", "nvdla_sdp"):
        return n_segments * 2
    raise ValueError(f"unknown unit kind {unit_kind!r}")


@dataclass(frozen=True)
class PhaseRecord:
    """One non-linear phase of the schedule."""

    op_name: str
    function: str
    queries: int
    compute_cycles: int
    reload_cycles: int

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.reload_cycles


@dataclass
class ScheduleReport:
    """Full schedule of a workload's non-linear phases on one unit."""

    unit_kind: str
    phases: list[PhaseRecord] = field(default_factory=list)

    @property
    def compute_cycles(self) -> int:
        """Cycles spent actually approximating."""
        return sum(p.compute_cycles for p in self.phases)

    @property
    def reload_cycles(self) -> int:
        """Cycles lost to table rewrites (0 for NOVA)."""
        return sum(p.reload_cycles for p in self.phases)

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.reload_cycles

    @property
    def reload_overhead(self) -> float:
        """Reload stalls as a fraction of useful compute."""
        if self.compute_cycles == 0:
            return 0.0
        return self.reload_cycles / self.compute_cycles

    def function_switches(self) -> int:
        """How many times the active function changed."""
        switches = 0
        active = None
        for phase in self.phases:
            if phase.function != active:
                if active is not None:
                    switches += 1
                active = phase.function
        return switches


class TableScheduler:
    """Schedules an op graph's non-linear ops onto a vector unit kind."""

    def __init__(
        self,
        tables: dict[str, QuantizedPwl],
        n_lanes: int,
        unit_kind: str = "nova",
    ) -> None:
        if n_lanes < 1:
            raise ValueError(f"n_lanes must be >= 1, got {n_lanes}")
        if not tables:
            raise ValueError("need at least one function table")
        # validate the unit kind eagerly
        reconfiguration_cycles(unit_kind, next(iter(tables.values())).n_segments)
        self.tables = dict(tables)
        self.n_lanes = n_lanes
        self.unit_kind = unit_kind

    def table_for(self, function: str) -> QuantizedPwl:
        """The compiled table for ``function``.

        ReLU needs no table (it is exactly PWL and typically folded into
        the accumulator's clamp), so it maps to whatever is active.
        """
        try:
            return self.tables[function]
        except KeyError:
            available = ", ".join(sorted(self.tables))
            raise KeyError(
                f"no table compiled for {function!r}; available: {available}"
            ) from None

    def schedule(self, graph: OpGraph) -> ScheduleReport:
        """Walk the graph in order, charging reloads on function changes."""
        report = ScheduleReport(unit_kind=self.unit_kind)
        active_function: str | None = None
        for op in graph.ops:
            if not isinstance(op, NonLinearOp):
                continue
            if op.function == "relu":
                # free on every unit: the MAC output clamp implements it
                continue
            table = self.table_for(op.function)
            reload = 0
            if op.function != active_function:
                if active_function is not None:
                    reload = reconfiguration_cycles(
                        self.unit_kind, table.n_segments
                    )
                active_function = op.function
            compute = -(-op.queries // self.n_lanes)
            report.phases.append(
                PhaseRecord(
                    op_name=op.name,
                    function=op.function,
                    queries=op.queries,
                    compute_cycles=compute,
                    reload_cycles=reload,
                )
            )
        return report
