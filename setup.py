#!/usr/bin/env python
from setuptools import setup
setup()
