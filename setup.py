#!/usr/bin/env python
from setuptools import find_packages, setup

setup(
    name="nova-repro",
    version="1.0.0",
    description=(
        "Reproduction of NOVA: NoC-based Vector Unit for Mapping "
        "Attention Layers on a CNN Accelerator (DATE 2024)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": ["nova-repro = repro.eval.cli:main"],
    },
)
