#!/usr/bin/env python
"""Energy study: BERT-family inference on a TPU-v4-like host (Fig. 8).

Runs each of the paper's five attention benchmarks through the SCALE-Sim-
style timing model, then prices the non-linear work under three vector
units: NOVA, the per-neuron LUT and the per-core LUT.  Prints per-
inference energy and the NOVA overhead relative to the host's own
MAC+SRAM energy — the quantities behind the paper's "only 0.5% energy
overhead" claim.

Run:  python examples/bert_attention_energy.py [--seq-len 1024]
"""

import argparse

from repro.accelerators import build_accelerator
from repro.eval.experiments import (
    HOST_MAC_PJ,
    HOST_SRAM_WORD_PJ,
    _inference_energy_mj,
)
from repro.eval.paper_data import TABLE2_CONFIGS
from repro.utils.tables import format_table
from repro.workloads import BERT_MODELS, bert_graph


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seq-len", type=int, default=1024)
    parser.add_argument(
        "--accelerator", default="TPU v4-like", choices=sorted(TABLE2_CONFIGS)
    )
    args = parser.parse_args()

    cfg = TABLE2_CONFIGS[args.accelerator]
    host = build_accelerator(args.accelerator)
    rows = []
    for model_name in BERT_MODELS:
        graph = bert_graph(model_name, seq_len=args.seq_len)
        report = host.run(graph)
        host_mj = (
            report.total_macs * HOST_MAC_PJ
            + (report.sram_reads + report.sram_writes) * HOST_SRAM_WORD_PJ
        ) * 1e-9
        nova = _inference_energy_mj(
            "nova", cfg, report.total_cycles, report.nonlinear_cycles
        )
        pn = _inference_energy_mj(
            "per_neuron_lut", cfg, report.total_cycles, report.nonlinear_cycles
        )
        pc = _inference_energy_mj(
            "per_core_lut", cfg, report.total_cycles, report.nonlinear_cycles
        )
        rows.append(
            [
                model_name,
                f"{report.runtime_ms:.2f}",
                report.nonlinear_queries,
                f"{nova * 1000:.3f}",
                f"{pn * 1000:.3f}",
                f"{pc * 1000:.3f}",
                f"{100 * nova / host_mj:.2f}%",
            ]
        )
    print(
        format_table(
            headers=[
                "Benchmark", "Runtime (ms)", "NL queries",
                "NOVA (uJ)", "Per-neuron LUT (uJ)", "Per-core LUT (uJ)",
                "NOVA overhead vs host",
            ],
            rows=rows,
            title=(
                f"Per-inference approximator energy on {args.accelerator} "
                f"(seq len {args.seq_len})"
            ),
        )
    )


if __name__ == "__main__":
    main()
