#!/usr/bin/env python
"""Async serving: streaming requests, pluggable policies, SLO reports.

Everything before PR 7 served a batch that was simply *there*; real
serving is a stream — requests arrive over time with different
priorities, tenants and deadlines, and the scheduler must decide per
step who runs.  The front door (``repro.serving``) models exactly that
on a **virtual clock**: time is the engine's own cycle counters, so a
trace replays byte-identically and no wall clock is read anywhere.

Three layers:

1. ``FrontDoor.submit`` + ``serve`` — a handful of hand-written
   streaming requests through the default FCFS policy, reading
   per-request TTFT/latency off the report;
2. a seeded bursty heavy-tailed trace (``build_trace``) served under
   every policy — FCFS vs priority-preemptive vs SLO-aware vs
   tenant-fair at the same slot budget, same requests, same clock;
3. the bit-exactness contract: whatever the policy decided, each
   request's outputs are identical to running it alone.

Run:  python examples/async_serving.py
"""

import numpy as np

from repro import NovaSession
from repro.serving import (
    POLICIES,
    FrontDoor,
    build_trace,
    estimate_cycles_per_token,
)
from repro.workloads import TransformerConfig, decode_request


def main() -> None:
    session = NovaSession("jetson-nx")
    engine = session.decoder
    print(f"session: {session!r}")

    # 1. Submit a few streaming requests by hand: a bulk job arrives
    #    first, two short interactive requests land mid-flight.
    model = TransformerConfig(
        "gpt-toy", layers=1, hidden=32, heads=4, intermediate=128,
        seq_len=128, causal=True,
    )
    door = FrontDoor(engine, policy="fcfs", max_active=2)
    door.submit(
        decode_request(model, prompt_len=8, max_new_tokens=24, seed=0),
        arrival=0.0, tenant="batch",
    )
    door.submit(
        decode_request(model, prompt_len=4, max_new_tokens=4, seed=1),
        arrival=40.0, tenant="chat", deadline=400.0,
    )
    door.submit(
        decode_request(model, prompt_len=4, max_new_tokens=4, seed=2),
        arrival=45.0, tenant="chat", deadline=400.0,
    )
    report = door.serve()
    print(f"\nfcfs, {report.n_requests} streaming requests, "
          f"{report.scheduler_steps} scheduler steps, makespan "
          f"{report.makespan_cycles:.0f} virtual cycles:")
    for r in report.requests:
        print(f"  request {r.request_id} ({r.tenant:>5}): arrival "
              f"{r.arrival:6.1f}  ttft {r.ttft:6.1f}  latency "
              f"{r.latency:6.1f}  tokens {r.tokens}  "
              f"deadline {'met' if r.met_deadline else 'MISSED'}")

    # 2. A seeded bursty heavy-tailed trace under every policy: Pareto
    #    prompt/budget sizes, flash-crowd arrivals, two tenants, two
    #    priority levels, deadlines at 2x fair solo service time.
    cpt = estimate_cycles_per_token(engine, hidden=16, n_heads=2)
    trace = build_trace(
        32, hidden=16, n_heads=2, process="bursty", mean_gap=cpt * 2,
        prompt_range=(2, 10), tokens_range=(2, 48), tail_alpha=1.05,
        max_burst=12, priorities=(0, 1), deadline_slack=2.0,
        cycles_per_token=cpt, seed=4,
    )
    print(f"\nheavy-tailed trace: {len(trace)} requests, budgets "
          f"{min(t.request.max_new_tokens for t in trace)}-"
          f"{max(t.request.max_new_tokens for t in trace)} tokens, "
          f"~{cpt:.1f} cycles/token")
    print(f"{'policy':<20} {'p50 TTFT':>9} {'p99 TTFT':>9} "
          f"{'goodput':>8} {'SLO':>5} {'preempt':>7}")
    doors = {}
    for name in POLICIES:
        doors[name] = FrontDoor(engine, policy=name, max_active=2)
        rep = doors[name].serve(trace)
        print(f"{rep.policy:<20} {rep.p50_ttft:>9.1f} {rep.p99_ttft:>9.1f} "
              f"{rep.goodput_tokens_per_kcycle:>8.2f} "
              f"{rep.slo_attainment:>5.2f} {rep.preemptions:>7}")

    # 3. The contract: scheduling moved *when* work happened, never
    #    what it computed — every policy's outputs are solo-exact.
    solo = {t.request_id: engine.generate(t.request) for t in trace}
    for name, d in doors.items():
        for rid, got in d.last_results().items():
            assert np.array_equal(got.generated, solo[rid].generated)
            assert got.vector_cycles == solo[rid].vector_cycles
    print("\nevery policy's per-request outputs are bit-identical to "
          "solo generate")

    # The report serializes for dashboards: one JSON document per run.
    doc = report.to_json(indent=2)
    print(f"report.to_json() -> {len(doc)} bytes "
          f"(policy={report.policy!r}, p99_ttft={report.p99_ttft:.1f})")


if __name__ == "__main__":
    main()
