#!/usr/bin/env python
"""The paper's Fig. 2 / Fig. 4 walkthrough, executed on the simulators.

The setup from §II/§III-A: a 4x2 grid of 8 PEs, one output neuron each,
an 8-breakpoint table, and neuron outputs x1..x8 chosen so that PE i's
value falls in segment i of the piecewise-linear function.  We run the
same lookup on the LUT-based baseline (Fig. 2) and on the NOVA NoC
(Fig. 4) and print the cycle-by-cycle story, checking that both produce
``a_i * x_i + b_i`` exactly.

Run:  python examples/walkthrough_fig2_fig4.py
"""

import numpy as np

from repro import (
    NovaConfig,
    NovaVectorUnit,
    PerNeuronLutUnit,
    PiecewiseLinear,
    QuantizedPwl,
    get_function,
)
from repro.approx.quantize import pack_beats


def main() -> None:
    # An 8-segment table for sigmoid (any smooth non-linearity works).
    spec = get_function("sigmoid")
    table = QuantizedPwl(
        PiecewiseLinear.fit(spec.fn, spec.domain, n_segments=8, name="sigmoid")
    )
    edges = table.quantized_pwl.edges()

    # One neuron output per PE, placed mid-segment so PE i hits address i.
    x = np.array([(edges[i] + edges[i + 1]) / 2.0 for i in range(8)])
    grid = x.reshape(8, 1)  # 8 routers x 1 neuron, snaking the 4x2 grid

    print("=== Fig 2: LUT-based baseline (8 PEs, per-neuron LUTs) ===")
    lut = PerNeuronLutUnit(table, n_cores=8, neurons_per_core=1)
    addresses = table.segment_index(x)
    print(f"cycle 1: comparators form lookup addresses {addresses.tolist()}")
    print("         each PE fetches (slope, bias) from its private 64 B LUT")
    lut_result = lut.approximate(grid)
    print("cycle 2: MACs compute a*x + b ->",
          np.round(lut_result.outputs.ravel(), 4).tolist())

    print()
    print("=== Fig 4: NOVA NoC (slope/bias 'stored in wires') ===")
    nova = NovaVectorUnit(
        table,
        NovaConfig(n_routers=8, neurons_per_router=1,
                   pe_frequency_ghz=0.24, hop_mm=1.0),
        grid_shape=(4, 2),
    )
    beats = pack_beats(table)
    print(f"table serialises to {len(beats)} beat(s); "
          f"beat 0 carries pairs for addresses "
          f"{[s * len(beats) for s in range(8)]}")
    for router_id in range(8):
        row, col = nova.topology.position(router_id)
        arrival = nova.noc.arrival_cycle(router_id)
        print(f"  router {router_id} = Core({row},{col}), "
              f"beat arrives {arrival} NoC cycle(s) after launch")
    nova_result = nova.approximate(grid)
    print(f"cycle 1: single-cycle multi-hop broadcast "
          f"({nova_result.noc_cycles} NoC cycle(s)); each router tag-matches "
          "its address and captures one pair")
    print("cycle 2: MACs compute a*x + b ->",
          np.round(nova_result.outputs.ravel(), 4).tolist())

    assert np.array_equal(lut_result.outputs, nova_result.outputs), \
        "LUT and NOVA disagree"
    print()
    print("LUT baseline and NOVA agree bit-for-bit; same 2-cycle latency, "
          "no SRAM in the NOVA path.")


if __name__ == "__main__":
    main()
