#!/usr/bin/env python
"""Prefix caching: shared prompt blocks, refcounts, copy-on-write.

PR 4's paged KV cache gave every request its own physical blocks; this
example shows the sharing layer on top: full prompt blocks are
content-addressed (a chained hash of their token rows), a request whose
prompt opens with an already-cached prefix *adopts* the publisher's
physical blocks under a refcount, and the first divergent write into a
shared block triggers copy-on-write.  The win is pure pool residency —
every request still computes its own prefill, tokens/cycles/counters
stay bit-identical — N requests sharing a system prompt just stop
storing N copies of the same KV rows.  Four layers:

1. :func:`~repro.core.paging.prefix_block_keys` — the content address:
   same prefix, same keys, whatever follows;
2. engine-level adoption over one shared
   :class:`~repro.core.paging.BlockPool` — the second request's prefill
   skips physical writes into adopted blocks, bit-exact all the way;
3. copy-on-write — a forked cache diverges and pays for exactly the
   block it touched;
4. the ``enable_prefix_caching`` config knob through the paged
   scheduler and the async front door's hit-rate report — the
   residency win the benchmark gates at 2x.

Run:  python examples/prefix_caching.py
"""

import numpy as np

from repro import BlockPool, ContinuousBatchScheduler, NovaSession
from repro.core.decode import SequenceMeta
from repro.core.paging import prefix_block_keys
from repro.serving import FrontDoor, ServingRequest
from repro.workloads import TransformerConfig, shared_prefix_decode_batch


def main() -> None:
    session = NovaSession("jetson-nx")
    engine = session.decoder
    block_size = session.config.kv_block_size
    print(f"session: {session!r} (kv_block_size={block_size})")

    model = TransformerConfig(
        "gpt-toy", layers=1, hidden=64, heads=4, intermediate=256,
        seq_len=256, causal=True,
    )
    # Every prompt opens with the same 32-token preamble (two full
    # blocks) and appends 2 private tokens; 4 generated on top.
    requests = shared_prefix_decode_batch(
        model, 8, prefix_len=32, suffix_len=2, max_new_tokens=4, seed=0,
    )
    first, second = requests[0], requests[1]

    # 1. Content-addressed identity: full prompt blocks hash to the
    #    same keys for every request that shares the prefix, and the
    #    private suffix never changes them (each key chains on the
    #    previous block, so the address pins the whole prefix).
    keys_a = prefix_block_keys(
        first.x, first.wk, first.wv, first.n_heads, block_size
    )
    keys_b = prefix_block_keys(
        second.x, second.wk, second.wv, second.n_heads, block_size
    )
    assert keys_a == keys_b  # 32 shared tokens = 2 shared block keys
    print(f"{len(keys_a)} x {block_size}-token blocks share a content "
          f"address across all {len(requests)} prompts")

    # 2. Engine-level adoption: one pool, two requests.  The first
    #    prefill publishes its full blocks into the pool's prefix
    #    index; the second — started *after* that prefill landed —
    #    adopts them at start and its own prefill skips the physical
    #    writes (same math, same tokens, fewer blocks).
    pool = BlockPool(first.n_heads, first.head_dim, block_size, n_blocks=12)
    solo = [engine.generate(r) for r in (first, second)]
    states, shared = [], []
    for r in (first, second):
        states.append(engine.start(r, pool=pool, prefix=True))
        shared.append(engine.generate(r, state=states[-1]))
    for ref, got in zip(solo, shared):
        assert np.array_equal(ref.generated, got.generated)
        assert ref.vector_cycles == got.vector_cycles
    info = pool.pool_info()
    print(f"adoption: {info['prefix_hits']} hits, "
          f"{info['blocks_shared']} blocks shared, "
          f"{info['in_use']} blocks live for 2 requests "
          f"(vs {2 * info['in_use'] - info['blocks_shared']} unshared) — "
          f"outputs bit-exact")

    # 3. Copy-on-write: a forked cache shares every block with its
    #    parent until it writes; the first divergent append copies just
    #    the touched block and leaves the parent untouched.
    twin = states[1].cache.fork()
    row = np.ones((first.n_heads, first.head_dim))
    twin.append(row, row)
    after = pool.pool_info()
    assert after["cow_copies"] == 1
    print(f"copy-on-write: 1 divergent append = {after['cow_copies']} "
          f"block copy, parent cache untouched")
    del twin, states, shared

    # 4. The config knob, end to end.  A scheduler built from an
    #    engine whose config enables prefix caching resolves the knob
    #    itself; siblings arrive one cycle after the leader so they
    #    adopt its published prefill.
    flagged = NovaSession(
        session.config.replace(enable_prefix_caching=True)
    ).decoder
    metas = [SequenceMeta(arrival=0.0)] + [
        SequenceMeta(arrival=1.0) for _ in requests[1:]
    ]
    cached_sched = ContinuousBatchScheduler(
        flagged, max_active=8, paged=True, block_size=block_size,
    )
    assert cached_sched.prefix_caching  # resolved from the config knob
    cached = cached_sched.run(requests, meta=metas)
    plain = ContinuousBatchScheduler(
        engine, max_active=8, paged=True, block_size=block_size,
        prefix_caching=False,
    ).run(requests, meta=metas)
    for ref, got in zip(plain.results, cached.results):
        assert np.array_equal(ref.generated, got.generated)
    print(f"scheduler: peak {cached.peak_kv_slots} KV slots cached vs "
          f"{plain.peak_kv_slots} uncached "
          f"({plain.peak_kv_slots / cached.peak_kv_slots:.2f}x residency), "
          f"{cached.paging['prefix_hits']} hits, "
          f"{cached.paging['cow_copies']} CoW copies, tokens identical")

    door = FrontDoor(engine, paged=True, block_size=block_size,
                     prefix_caching=True)
    trace = [
        ServingRequest(request=r, arrival=float(i > 0), request_id=i)
        for i, r in enumerate(requests)
    ]
    report = door.serve(trace)
    print(f"front door: {report.prefix_hits} prefix hits at "
          f"{report.prefix_hit_rate:.0%} hit rate, "
          f"{report.blocks_shared} blocks shared across "
          f"{len(trace)} streamed requests")


if __name__ == "__main__":
    main()
