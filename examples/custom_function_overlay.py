#!/usr/bin/env python
"""Mapping a *custom* non-linear function onto NOVA.

The paper's flow is function-agnostic: anything a 2-layer ReLU MLP can
approximate can ride the NoC.  This example maps a function that is not
in the registry — the Mish activation, ``x * tanh(softplus(x))`` — end to
end: train the compile-time MLP, quantise, check the mapper's beat
schedule for an 8- vs 16- vs 32-entry table, and run it through a
REACT-style overlay with per-value bypass.

Run:  python examples/custom_function_overlay.py
"""

import numpy as np

from repro import NovaVectorUnit, QuantizedPwl, train_nnlut_mlp
from repro.core import ReactOverlay
from repro.core.mapper import NovaMapper


def mish(x: np.ndarray) -> np.ndarray:
    """Mish activation (Misra, 2019)."""
    x = np.asarray(x, dtype=np.float64)
    return x * np.tanh(np.logaddexp(0.0, x))


def main() -> None:
    domain = (-6.0, 6.0)

    # The mapper's beat schedule scales with the table size: 8 entries ride
    # a single beat at the PE clock; 16 need 2 beats at 2x; 32 need 4 at 4x.
    mapper = NovaMapper()
    print("beat schedule vs table size (REACT: 10 routers @ 240 MHz):")
    for n_segments in (8, 16, 32):
        schedule = mapper.schedule(
            n_routers=10, pe_frequency_ghz=0.24, n_pairs=n_segments
        )
        print(
            f"  {n_segments:2d} pairs -> {schedule.n_beats} beat(s), NoC at "
            f"{schedule.clock_multiplier}x ({schedule.noc_frequency_ghz:.2f} "
            f"GHz), latency {schedule.total_latency_pe_cycles} PE cycles"
        )

    # Compile-time fit at the paper's default budget.
    mlp = train_nnlut_mlp(mish, domain=domain, n_segments=16, seed=3, name="mish")
    table = QuantizedPwl(mlp.to_piecewise_linear(n_segments=16))
    xs = np.linspace(*domain, 2001)
    max_err = float(np.max(np.abs(table.quantized_pwl.evaluate(xs) - mish(xs))))
    print(f"\n16-entry PWL fit of mish: max |err| = {max_err:.4f} over {domain}")

    # REACT overlay with bypass: half the values skip the approximator
    # (tensor data routed straight through the 6x2 crossbar).
    unit = NovaVectorUnit(table, "react")  # 10 x 256 @ 0.24 GHz, 1 mm hop
    overlay = ReactOverlay(unit=unit)
    rng = np.random.default_rng(11)
    # Draw within the fitted domain; values beyond it would be clamped by
    # the comparator front-end (saturating comparison).
    outputs = rng.normal(0.0, 1.5, size=(10, 256))
    bypass = rng.random(size=outputs.shape) < 0.5
    mixed = overlay.process_with_bypass(outputs, bypass)
    assert np.array_equal(mixed[bypass], outputs[bypass]), "bypass altered data"
    approx_vals = mixed[~bypass]
    true_vals = mish(outputs[~bypass])
    print(
        f"REACT overlay: {overlay.bypassed_values} values bypassed unchanged, "
        f"{approx_vals.size} approximated "
        f"(max |err| = {np.max(np.abs(approx_vals - true_vals)):.4f})"
    )
    print("attachment:", overlay.attachment().notes)


if __name__ == "__main__":
    main()
