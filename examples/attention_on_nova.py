#!/usr/bin/env python
"""A complete attention layer on the NOVA overlay — the paper's title.

Every non-linear operation of a multi-head self-attention layer (the
softmax's exp, the normaliser's reciprocal) runs through the
cycle-accurate NOVA hardware model, with the mapper switching function
tables for free (they live on the wires, not in SRAM).  The front door
is a :class:`NovaSession` on a Table II geometry preset; the example
compares the hardware layer against the exact float layer and prints
the vector-unit cycle/event accounting.

Run:  python examples/attention_on_nova.py
"""

import numpy as np

from repro import NovaSession


def main() -> None:
    # BERT-tiny-like layer on the Jetson preset of Table II (2 routers x
    # 16 lanes at 1.4 GHz) — one session, every execution mode.
    seq, hidden, heads = 16, 32, 2
    session = NovaSession("jetson-nx")
    print(f"session: {session!r}")

    rng = np.random.default_rng(42)
    scale = 1.0 / np.sqrt(hidden)
    x = rng.normal(0.0, 1.0, size=(seq, hidden))
    weights = {
        name: rng.normal(0.0, scale, size=(hidden, hidden))
        for name in ("wq", "wk", "wv", "wo")
    }

    result = session.attention_layer(x, n_heads=heads, **weights)
    exact = session.exact_attention_layer(x, n_heads=heads, **weights)

    rel_err = np.max(np.abs(result.outputs - exact)) / np.max(np.abs(exact))
    print(f"attention layer: seq={seq}, hidden={hidden}, heads={heads}")
    print(f"max relative output error vs exact float layer: {rel_err:.4f}")
    print(f"attention probabilities shape: {result.probabilities.shape}, "
          f"rows sum to 1: {np.allclose(result.probabilities.sum(-1), 1.0)}")
    print(f"non-linear queries issued: {result.nonlinear_queries}")
    print(f"vector-unit busy cycles:   {result.vector_cycles} "
          f"(one query per lane per PE cycle, {session.n_lanes} lanes)")
    print("hardware events:",
          {k: v for k, v in sorted(result.counters.as_dict().items())
           if k in ("mac_op", "wire_hop", "pair_capture", "beat_launch")})
    print("\nno SRAM reads anywhere:",
          result.counters.get("lut_read") == 0)
    print("table switches (exp -> reciprocal) cost 0 reload cycles on "
          "NOVA — the tables ride the NoC beats.")


if __name__ == "__main__":
    main()
