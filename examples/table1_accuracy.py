#!/usr/bin/env python
"""Table I end to end: train the model zoo, evaluate exact vs PWL softmax.

Trains all six Table I model families on their synthetic stand-in
datasets (about a minute), then evaluates each trained network twice with
identical weights — exact softmax/GeLU vs the 16/8-breakpoint PWL
approximations — and prints the Table I comparison.

Run:  python examples/table1_accuracy.py [--max-models N]
"""

import argparse

from repro.eval.experiments import table1_accuracy
from repro.eval.report import render_experiment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--max-models", type=int, default=None,
        help="limit the zoo (default: all six rows)",
    )
    args = parser.parse_args()
    result = table1_accuracy(max_models=args.max_models)
    print(render_experiment(result))


if __name__ == "__main__":
    main()
