#!/usr/bin/env python
"""Autoregressive decode on NOVA: KV cache, generate, continuous batching.

The serving regime that dominates attention-heavy traffic is
token-by-token decode over a KV cache.  This example opens a
:class:`NovaSession` on the Jetson-like Table II geometry, builds a
small causal (GPT-style) decode workload, and shows the three layers of
the decode stack:

1. ``session.decode``    — the prompt decoded token by token, checked
   bit-exact against the packed causal prefill,
2. ``session.generate``  — prefill + autoregressive generation,
3. ``session.serve_decode`` — many requests continuously batched
   through one shared overlay, bit-exact against one-at-a-time decode.

Run:  python examples/decode_generate.py
"""

import numpy as np

from repro import NovaSession
from repro.workloads import TransformerConfig, decode_batch, decode_request


def main() -> None:
    session = NovaSession("jetson-nx")
    print(f"session: {session!r}")

    # A small causal decoder (GPT-2 family shape, scaled down so the
    # example runs in seconds).
    model = TransformerConfig(
        "gpt-toy", layers=1, hidden=64, heads=4, intermediate=256,
        seq_len=128, causal=True,
    )
    request = decode_request(model, prompt_len=12, max_new_tokens=8, seed=0)

    # 1. Token-by-token decode over the KV cache reproduces the packed
    #    causal prefill bit for bit — same cache, same per-token math,
    #    only the hardware stream packing differs.
    decoded = session.decode(request)
    state = session.decoder.start(request)
    prefill = session.decoder.prefill(state)
    assert np.array_equal(decoded.outputs, prefill.outputs)
    print(f"decode == prefill on {decoded.n_tokens} prompt tokens "
          f"(prefill {prefill.vector_cycles} packed vector cycles, "
          f"decode {decoded.vector_cycles} step-by-step)")

    # 2. Generate: prefill the prompt, then feed each step's attention
    #    output back as the next token's embedding.
    gen = session.generate(request)
    print(f"generated {gen.n_generated} tokens in "
          f"{gen.decode_vector_cycles} vector cycles "
          f"({gen.cycles_per_token:.1f} cycles/token, KV cache at "
          f"{request.seq + gen.n_generated}/{request.capacity} entries)")

    # 3. Continuous batching: requests join and leave between steps;
    #    every in-flight request's rows share one lane stream per step.
    requests = decode_batch(model, 8, prompt_len=12, max_new_tokens=8,
                            seed=0)
    batch = session.serve_decode(requests, max_active=4)
    assert np.array_equal(batch.results[0].generated, gen.generated)
    print(f"served {batch.n_requests} requests / "
          f"{batch.total_generated_tokens} tokens in "
          f"{batch.scheduler_steps} scheduler steps: "
          f"{batch.packed_vector_cycles} packed vector cycles vs "
          f"{batch.sequential_vector_cycles} one-at-a-time "
          f"({batch.packing_speedup:.2f}x packing win, "
          f"{batch.pages_recycled} cache pages recycled)")


if __name__ == "__main__":
    main()
