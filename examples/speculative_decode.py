#!/usr/bin/env python
"""Speculative decode: draft-and-verify generation over paged KV.

Plain decode pays one full overlay pass per output token.  Speculative
decode (PR 5) lets a cheap draft model propose the next ``spec_k`` token
embeddings, appends them to the KV cache as *provisional* tokens, and
scores all of them plus one bonus position in a **single packed
verification pass** — accepted drafts commit, the rejected suffix rolls
back by truncating the cache (freeing whole blocks when the cache is
paged).  Because a draft is accepted only when it matches the true
output bit for bit, the generated tokens are identical to plain
``generate`` for *any* draft model.  Three layers:

1. ``session.generate(request, speculative=True)`` — the exact-LUT
   draft accepts everything: same tokens, a fraction of the overlay
   passes;
2. a lower-fidelity draft — rollbacks appear, tokens stay identical;
3. speculative continuous batching over a shared block pool —
   verification passes of different requests fused per scheduler step,
   rollback returning blocks to the pool.

Run:  python examples/speculative_decode.py
"""

import numpy as np

from repro import BlockPool, NovaSession
from repro.core.speculative import SpeculativeDecodeEngine, TruncatedTableDraft
from repro.workloads import TransformerConfig, decode_request, decode_batch


def main() -> None:
    session = NovaSession("jetson-nx")
    print(f"session: {session!r} (spec_k={session.config.spec_k}, "
          f"draft_kind={session.config.draft_kind!r})")

    model = TransformerConfig(
        "gpt-toy", layers=1, hidden=64, heads=4, intermediate=256,
        seq_len=256, causal=True,
    )
    request = decode_request(model, prompt_len=12, max_new_tokens=16, seed=0)

    # 1. Exact-LUT draft: every proposal verifies bit-identically, so a
    #    pass commits spec_k+1 tokens for one overlay traversal.
    plain = session.generate(request)
    spec = session.generate(request, speculative=True)
    assert np.array_equal(spec.generated, plain.generated)
    assert spec.sequential_vector_cycles == plain.vector_cycles
    print(f"exact draft: {spec.n_generated} tokens in {spec.verify_passes} "
          f"verification passes ({spec.tokens_per_pass:.1f} tokens/pass), "
          f"{spec.vector_cycles} vs {plain.vector_cycles} vector cycles "
          f"({spec.cycle_speedup:.2f}x cycle win), acceptance "
          f"{spec.acceptance_rate:.0%}")

    # 2. A lower-fidelity draft misses sometimes: rejected suffixes roll
    #    back, tokens stay bit-identical.
    noisy = TruncatedTableDraft(session.config, fidelity=0.7, seed=1)
    spec_noisy = session.generate(request, speculative=True, draft=noisy)
    assert np.array_equal(spec_noisy.generated, plain.generated)
    print(f"fidelity-0.7 draft: acceptance {spec_noisy.acceptance_rate:.0%}, "
          f"{spec_noisy.drafted_tokens} drafted / "
          f"{spec_noisy.accepted_tokens} accepted / "
          f"{spec_noisy.rolled_back_tokens} rolled back, still bit-exact")

    # 3. Speculative continuous batching over one shared block pool:
    #    each scheduler step fuses every in-flight request's
    #    verification pass into one lane stream; rollbacks free whole
    #    blocks back to the pool.
    requests = decode_batch(model, 6, prompt_len=10, max_new_tokens=12, seed=0)
    batch = session.serve_decode(
        requests, max_active=3, paged=True, speculative=True,
    )
    solo = session.generate(requests[0], speculative=True)
    assert np.array_equal(batch.results[0].generated, solo.generated)
    assert batch.paging["in_use"] == 0  # every block back home
    print(f"served {batch.n_requests} requests speculatively in "
          f"{batch.scheduler_steps} scheduler steps "
          f"(peak {batch.peak_active} in flight); pool: "
          f"{batch.paging['blocks_allocated']} blocks allocated, "
          f"{batch.paging['blocks_freed']} freed (rollback + retirement), "
          f"0 leaked")

    # Rollback accounting detail: a speculative run over an explicit
    # pool frees rejected drafts' blocks through the same path window
    # eviction uses.
    pool = BlockPool(request.n_heads, request.head_dim,
                     session.config.kv_block_size, n_blocks=4)
    engine = SpeculativeDecodeEngine(session.decoder, draft=noisy)
    result = engine.generate(
        request, state=engine.start(request, pool=pool)
    )
    assert np.array_equal(result.generated, plain.generated)
    print(f"explicit pool: {result.rolled_back_tokens} tokens rolled back, "
          f"pool ends with {pool.in_use} blocks in use / "
          f"{pool.blocks_freed} cumulative frees "
          f"(allocated - freed == in_use: "
          f"{pool.blocks_allocated - pool.blocks_freed == pool.in_use})")


if __name__ == "__main__":
    main()
