#!/usr/bin/env python
"""Paged KV cache: block pool, block tables, admission under a budget.

PR 3's decode engine gave every request a contiguous worst-case cache
page; this example shows the vLLM-style replacement: all KV storage is
fixed-size blocks in one shared :class:`~repro.core.paging.BlockPool`,
each request maps logical token positions to physical blocks through a
block table, and the continuous batcher admits by free blocks instead
of whole pages.  Three layers:

1. a :class:`~repro.core.paging.PagedKVCache` fed by ``generate`` —
   bit-exact against the contiguous cache, while holding only
   ``ceil(tokens / block_size)`` blocks instead of a worst-case page;
2. ``session.serve_decode(paged=True)`` — continuous batching over the
   shared pool, bit-exact against one-at-a-time decode;
3. the same mixed-length batch under a *tight* byte budget, contiguous
   vs paged — the admission-capacity win the benchmark gates at 1.5x.

Run:  python examples/paged_decode.py
"""

import numpy as np

from repro import BlockPool, NovaSession
from repro.workloads import TransformerConfig, mixed_decode_batch, decode_request


def main() -> None:
    session = NovaSession("jetson-nx")
    block_size = session.config.kv_block_size
    print(f"session: {session!r} (kv_block_size={block_size})")

    model = TransformerConfig(
        "gpt-toy", layers=1, hidden=64, heads=4, intermediate=256,
        seq_len=256, causal=True,
    )
    request = decode_request(model, prompt_len=12, max_new_tokens=8, seed=0)

    # 1. One request over a paged cache: same numerics, a fraction of
    #    the memory.  The contiguous page would reserve seq_len slots;
    #    the block table holds just enough blocks for 20 tokens.
    contiguous = session.generate(request)
    pool = BlockPool(
        request.n_heads, request.head_dim, block_size, n_blocks=8
    )
    engine = session.decoder
    paged = engine.generate(request, state=engine.start(request, pool=pool))
    assert np.array_equal(contiguous.generated, paged.generated)
    assert contiguous.vector_cycles == paged.vector_cycles
    info = pool.pool_info()
    print(f"paged == contiguous over {request.seq + paged.n_generated} "
          f"tokens: {info['in_use']} blocks x {block_size} slots vs a "
          f"{request.capacity}-slot page "
          f"({info['fragmentation_slots']} slots fragmented vs "
          f"{request.capacity - request.seq - paged.n_generated})")

    # 2. Continuous batching on the shared pool (auto-sized: no
    #    deferrals), still bit-exact per request.
    requests = mixed_decode_batch(model, 8, seed=0)
    batch = session.serve_decode(requests, max_active=8, paged=True)
    solo = session.generate(requests[0])
    assert np.array_equal(batch.results[0].generated, solo.generated)
    print(f"served {batch.n_requests} mixed-length requests in "
          f"{batch.scheduler_steps} steps: peak {batch.peak_active} "
          f"in flight, pool peaked at {batch.paging['peak_in_use']} "
          f"blocks ({batch.peak_fragmentation_slots} slots fragmented), "
          f"{batch.packing_speedup:.2f}x packing win")

    # 3. The admission story: same byte budget, two memory models.
    page_bytes = 2 * 8 * model.hidden * model.seq_len
    budget = 4 * page_bytes  # four worst-case pages
    tight_contig = session.serve_decode(
        requests, max_active=8, pool_bytes=budget
    )
    tight_paged = session.serve_decode(
        requests, max_active=8, paged=True, pool_bytes=budget
    )
    assert np.array_equal(
        tight_paged.results[-1].generated, tight_contig.results[-1].generated
    )
    print(f"at a fixed {budget // 1024} KiB pool: contiguous admits "
          f"{tight_contig.peak_active} concurrent requests, paged admits "
          f"{tight_paged.peak_active} "
          f"({tight_paged.peak_active / tight_contig.peak_active:.1f}x; "
          f"{tight_paged.deferrals} deferrals, "
          f"{tight_paged.preemptions} preemptions)")


if __name__ == "__main__":
    main()
