#!/usr/bin/env python
"""Quickstart: approximate GeLU on a NOVA overlay in ~30 lines.

One object is the front door to everything: a :class:`NovaSession`,
configured by a typed :class:`NovaConfig` geometry or a Table II preset
name.  The session compiles the 16-entry slope/bias table the NN-LUT way
(train a tiny MLP, whose ReLU kinks are the breakpoints), overlays the
TPU-v4-like configuration (8 routers x 128 neurons at 1.4 GHz), pushes a
batch of PE outputs through the cycle-accurate pipeline and checks it
against the golden model.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import NovaSession, get_function


def main() -> None:
    # 1. One typed front door: a Table II preset (or any NovaConfig).
    session = NovaSession("tpu-v4")
    print(f"session: {session!r}")
    print(f"config round-trips as JSON: {session.config.to_json()}")

    # 2. Raw vector-unit access: the overlay compiled for GeLU.  The
    #    PWL table is trained on first use and cached process-wide.
    unit = session.unit("gelu")
    table = unit.table
    print(f"table: {table.n_segments} slope/bias pairs "
          f"-> {table.n_beats} beats on the 257-bit link")
    s = unit.schedule
    print(f"mapper: NoC at {s.clock_multiplier}x the PE clock "
          f"({s.noc_frequency_ghz:.1f} GHz), "
          f"{'single' if s.single_cycle_broadcast else 'multi'}-cycle "
          f"broadcast, latency {s.total_latency_pe_cycles} PE cycles")

    # 3. One PE cycle's worth of outputs through the hardware pipeline.
    rng = np.random.default_rng(7)
    x = rng.normal(0.0, 2.5, size=session.config.lane_shape)
    result = unit.approximate(x)
    golden = unit.golden_reference(x)
    assert np.array_equal(result.outputs, golden), "hardware != golden model"
    max_err = np.max(np.abs(result.outputs - get_function("gelu").fn(x)))
    print(f"bit-exact vs golden model; max |err| vs true GeLU = {max_err:.4f}")
    print(f"events this batch: {dict(sorted(result.counters.as_dict().items()))}")


if __name__ == "__main__":
    main()
