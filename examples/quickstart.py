#!/usr/bin/env python
"""Quickstart: approximate GeLU on a NOVA overlay in ~30 lines.

Builds the compile-time PWL table the NN-LUT way (train a tiny MLP, whose
ReLU kinks are the breakpoints), overlays a TPU-v4-like configuration
(8 routers x 128 neurons at 1.4 GHz), pushes a batch of PE outputs through
the cycle-accurate pipeline and checks it against the golden model.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    NovaVectorUnit,
    QuantizedPwl,
    get_function,
    train_nnlut_mlp,
)


def main() -> None:
    # 1. Compile time: learn the 16-entry slope/bias table for GeLU.
    spec = get_function("gelu")
    mlp = train_nnlut_mlp(spec, n_segments=16, seed=0)
    table = QuantizedPwl(mlp.to_piecewise_linear(n_segments=16))
    print(f"table: {table.n_segments} slope/bias pairs "
          f"-> {table.n_beats} beats on the 257-bit link")

    # 2. Overlay a TPU-v4-like host: 8 MXUs, 128 output neurons each.
    unit = NovaVectorUnit(
        table, n_routers=8, neurons_per_router=128,
        pe_frequency_ghz=1.4, hop_mm=0.5,
    )
    s = unit.schedule
    print(f"mapper: NoC at {s.clock_multiplier}x the PE clock "
          f"({s.noc_frequency_ghz:.1f} GHz), "
          f"{'single' if s.single_cycle_broadcast else 'multi'}-cycle "
          f"broadcast, latency {s.total_latency_pe_cycles} PE cycles")

    # 3. One PE cycle's worth of outputs through the hardware pipeline.
    rng = np.random.default_rng(7)
    x = rng.normal(0.0, 2.5, size=(8, 128))
    result = unit.approximate(x)
    golden = unit.golden_reference(x)
    assert np.array_equal(result.outputs, golden), "hardware != golden model"
    max_err = np.max(np.abs(result.outputs - spec.fn(x)))
    print(f"bit-exact vs golden model; max |err| vs true GeLU = {max_err:.4f}")
    print(f"events this batch: {dict(sorted(result.counters.as_dict().items()))}")


if __name__ == "__main__":
    main()
