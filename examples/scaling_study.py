#!/usr/bin/env python
"""Scaling study: where does NOVA stop winning? (Figs 6-7 + §V-A.)

Three sweeps on the hardware cost model and the mapper:

1. area & power vs neurons-per-router (the Figs 6/7 curves, including the
   small-count regime where the fixed wire cost makes NOVA *lose*),
2. single-cycle reach vs NoC clock (the §V-A "10 routers @ 1.5 GHz"
   envelope),
3. latency vs line length at a fixed clock — what the mapper does when a
   design exceeds the single-cycle envelope (the paper's stated trade-off
   for scaling past 10 routers).

Run:  python examples/scaling_study.py
"""

from repro.core.mapper import NovaMapper
from repro.hw import nova_router_cost, per_core_lut_cost, per_neuron_lut_cost
from repro.utils.tables import format_table


def main() -> None:
    rows = []
    for neurons in (8, 16, 32, 64, 128, 256, 512):
        nova = nova_router_cost(neurons, pe_frequency_ghz=1.0, hop_mm=1.0)
        pn = per_neuron_lut_cost(neurons, pe_frequency_ghz=1.0)
        pc = per_core_lut_cost(neurons, pe_frequency_ghz=1.0)
        rows.append(
            [
                neurons,
                f"{nova.area_um2 / 1000:.1f}",
                f"{pn.area_um2 / 1000:.1f}",
                f"{pc.area_um2 / 1000:.1f}",
                f"{nova.power_mw():.2f}",
                f"{pn.power_mw():.2f}",
                f"{pc.power_mw():.2f}",
                "NOVA" if nova.power_mw() < min(pn.power_mw(), pc.power_mw())
                else "LUT",
            ]
        )
    print(
        format_table(
            headers=[
                "Neurons/router", "NOVA kum2", "PerN kum2", "PerC kum2",
                "NOVA mW", "PerN mW", "PerC mW", "Power winner",
            ],
            rows=rows,
            title="Figs 6-7 extended: per-router cost vs neuron count @1GHz",
        )
    )
    print("\nNOVA's fixed wire/register cost dominates below ~32 neurons; "
          "the broadcast amortises it above.\n")

    mapper = NovaMapper()
    rows = []
    for pe_ghz in (0.24, 0.5, 0.75, 1.0, 1.4):
        reach = mapper.max_single_cycle_routers(pe_ghz, n_pairs=16, hop_mm=1.0)
        rows.append([pe_ghz, pe_ghz * 2, reach])
    print(
        format_table(
            headers=["PE clock (GHz)", "NoC clock (GHz)", "Max routers, 1 cycle"],
            rows=rows,
            title="SV-A envelope: single-cycle reach at 1 mm pitch, 16 pairs",
        )
    )

    rows = []
    for n_routers in (5, 10, 15, 20, 30, 40):
        schedule = mapper.schedule(
            n_routers=n_routers, pe_frequency_ghz=0.75, n_pairs=16
        )
        rows.append(
            [
                n_routers,
                schedule.traversal_segments,
                len(schedule.buffering_routers),
                schedule.noc_cycles_per_lookup,
                schedule.total_latency_pe_cycles,
            ]
        )
    print()
    print(
        format_table(
            headers=[
                "Routers", "Wave segments", "Buffering routers",
                "NoC cycles/lookup", "Latency (PE cycles)",
            ],
            rows=rows,
            title="Scaling past the envelope (PE 0.75 GHz, NoC 1.5 GHz)",
        )
    )
    print("\nBeyond 10 routers the mapper inserts buffering routers and "
          "latency grows — the paper's stated trade-off (SV-A).")


if __name__ == "__main__":
    main()
