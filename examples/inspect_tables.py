#!/usr/bin/env python
"""Inspect a compiled PWL table: rows, wire image and shape.

Shows what actually rides the NOVA link for a given function: the
per-address slope/bias rows (what a LUT would store), the beat layout
with tag interleaving, the 257-bit wire images, and an ASCII overlay of
the function vs its approximation.

Run:  python examples/inspect_tables.py [--function exp] [--segments 16]
"""

import argparse

import numpy as np

from repro import QuantizedPwl, get_function, train_nnlut_mlp
from repro.approx.bitpack import encode_beat
from repro.approx.quantize import pack_beats
from repro.utils.tables import format_table


def ascii_overlay(fn, approx, domain, rows=16, cols=64) -> str:
    """Plot fn ('.') and its approximation ('#') on one character grid."""
    xs = np.linspace(domain[0], domain[1], cols)
    ys_fn = fn(xs)
    ys_ap = np.asarray(approx(xs))
    lo = min(ys_fn.min(), ys_ap.min())
    hi = max(ys_fn.max(), ys_ap.max())
    span = hi - lo or 1.0
    grid = [[" "] * cols for _ in range(rows)]
    for c in range(cols):
        r_fn = int((1 - (ys_fn[c] - lo) / span) * (rows - 1))
        r_ap = int((1 - (ys_ap[c] - lo) / span) * (rows - 1))
        grid[r_fn][c] = "."
        grid[r_ap][c] = "#" if r_ap != r_fn else "@"
    lines = ["".join(row) for row in grid]
    lines.append(f"x: [{domain[0]:g}, {domain[1]:g}]   "
                 f"'.' exact   '#' PWL   '@' overlapping")
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--function", default="exp")
    parser.add_argument("--segments", type=int, default=16)
    args = parser.parse_args()

    spec = get_function(args.function)
    mlp = train_nnlut_mlp(spec, n_segments=args.segments, seed=0)
    table = QuantizedPwl(mlp.to_piecewise_linear(n_segments=args.segments))

    rows = [
        [addr, f"{lo:.4f}", f"{hi:.4f}", f"{slope:.5f}", f"{bias:.5f}"]
        for addr, lo, hi, slope, bias in table.quantized_pwl.table_rows()
    ]
    print(format_table(
        headers=["Address", "Segment low", "Segment high", "Slope", "Bias"],
        rows=rows,
        title=f"{args.function}: {args.segments}-entry table "
              f"(what a LUT stores / NOVA broadcasts)",
    ))

    beats = pack_beats(table)
    print(f"\nbeat layout ({len(beats)} beat(s), tag = address LSBs):")
    for beat in beats:
        addresses = [slot * len(beats) + beat.tag for slot in range(8)]
        image = encode_beat(beat) if beat.tag in (0, 1) else None
        image_str = f"0x{image:065x}" if image is not None else "(wide tag)"
        print(f"  tag {beat.tag}: addresses {addresses}")
        print(f"         wire image {image_str}")

    print()
    print(ascii_overlay(spec.fn, table.evaluate, spec.domain))
    xs = np.linspace(*spec.domain, 4096)
    print(f"\nmax |error| = {np.max(np.abs(table.evaluate(xs) - spec.fn(xs))):.5f}")


if __name__ == "__main__":
    main()
