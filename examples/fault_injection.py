#!/usr/bin/env python
"""Robustness study: single-bit faults on the NOVA link.

NOVA replaces SRAM (which has a mature ECC story) with 257 long repeated
wires, so a deployment question the paper leaves open is: what does one
flipped wire do?  This example sweeps all 257 wire positions on beat 0 of
a broadcast, classifies the blast radius of each flip, and shows the
containment property: a coefficient-wire flip corrupts at most the lanes
whose lookup address selects that (beat, pair); only the single tag wire
can disturb the whole table (and it is *detected* — the affected lanes'
capture-valid bits drop, so one parity bit over the tag would close the
gap).

Run:  python examples/fault_injection.py
"""

import numpy as np

from repro import (
    NovaConfig,
    NovaVectorUnit,
    PiecewiseLinear,
    QuantizedPwl,
    get_function,
)
from repro.approx.bitpack import bit_field_of
from repro.noc import LinkFault, affected_addresses
from repro.utils.tables import format_table


def main() -> None:
    spec = get_function("sigmoid")
    table = QuantizedPwl(PiecewiseLinear.fit(spec.fn, spec.domain, 16))
    unit = NovaVectorUnit(
        table,
        NovaConfig(n_routers=4, neurons_per_router=32,
                   pe_frequency_ghz=1.0, hop_mm=1.0),
    )
    rng = np.random.default_rng(0)
    x = rng.uniform(*spec.domain, size=(4, 32))

    by_kind = {"tag": [], "slope": [], "bias": []}
    undetected_escapes = 0
    for bit in range(257):
        fault = LinkFault(beat_index=0, bit=bit)
        result = unit.approximate_with_fault(x, fault)
        kind, _pair = bit_field_of(bit)
        by_kind[kind].append(result.n_corrupted)
        # containment check: corrupted lanes must be statically predicted
        addresses = table.segment_index(x)
        victims = np.isin(addresses, list(affected_addresses(fault, 16, 2)))
        if np.any(result.corrupted_lanes & ~victims):
            undetected_escapes += 1

    total_lanes = 4 * 32
    rows = []
    for kind, counts in by_kind.items():
        rows.append(
            [
                kind,
                len(counts),
                f"{np.mean(counts):.1f}",
                max(counts),
                f"{np.mean(counts) / total_lanes * 100:.1f}%",
            ]
        )
    print(
        format_table(
            headers=["Wire kind", "Wires", "Mean corrupted lanes",
                     "Worst case", "Mean blast radius"],
            rows=rows,
            title=f"Single-bit fault sweep over all 257 wires "
                  f"({total_lanes} lanes, 16-entry table)",
        )
    )
    print(f"\ncontainment violations (corruption outside the predicted "
          f"victim set): {undetected_escapes}")

    # The tag wire is the single point of table-wide disturbance — but it
    # is self-announcing: victims' capture-valid bits drop.
    tag_result = unit.approximate_with_fault(x, LinkFault(beat_index=0, bit=0))
    print(f"tag-wire flip: {tag_result.n_corrupted} lanes disturbed, "
          f"{int(np.count_nonzero(~tag_result.captured))} of them flagged "
          "by the capture-valid mask (detectable without ECC)")


if __name__ == "__main__":
    main()
