"""Sweep benches: sequence-length and DRAM-inclusive energy studies."""

import pytest

from repro.eval.ascii_chart import bar_chart
from repro.eval.sweeps import (
    lane_sizing_sweep,
    memory_energy_sweep,
    seq_len_sweep,
)


@pytest.mark.benchmark(group="sweeps")
def test_seq_len_sweep(benchmark, record_experiment):
    result = benchmark.pedantic(seq_len_sweep, rounds=1, iterations=1)
    record_experiment(result, "sweep_seq_len.txt")
    print()
    print(
        bar_chart(
            result.column("Seq len"),
            result.column("Vector share %"),
            title="Vector-unit runtime share vs sequence length",
            unit="%",
        )
    )
    shares = result.column("Vector share %")
    assert shares == sorted(shares)  # monotone toward the §I motivation
    assert shares[-1] > 20.0


@pytest.mark.benchmark(group="sweeps")
def test_lane_sizing_sweep(benchmark, record_experiment):
    result = benchmark.pedantic(lane_sizing_sweep, rounds=1, iterations=1)
    record_experiment(result, "sweep_lane_sizing.txt")
    # the Table II TPU-v4 lane provisioning has headroom on every
    # benchmark — the sizing the paper uses is justified
    for row in result.rows:
        headroom = float(str(row[4]).rstrip("x"))
        assert headroom > 1.0
    # causal masking always relaxes demand vs full attention
    by_model = {}
    for row in result.rows:
        by_model.setdefault(row[0], {})[row[1]] = row[2]
    for model, modes in by_model.items():
        assert modes["causal"] < modes["full"], model


@pytest.mark.benchmark(group="sweeps")
def test_memory_energy_sweep(benchmark, record_experiment):
    result = benchmark.pedantic(memory_energy_sweep, rounds=1, iterations=1)
    record_experiment(result, "sweep_memory.txt")
    for row in result.rows:
        total = float(str(row[7]).rstrip("%"))
        core = float(str(row[6]).rstrip("%"))
        assert total < core
        if row[0].startswith("TPU"):
            assert total < 0.5  # stronger than the paper's 0.5% claim
