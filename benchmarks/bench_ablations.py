"""Ablation benches: the design-choice studies behind the paper's knobs."""

import pytest

from repro.eval.ablations import (
    ablation_breakpoints,
    ablation_fit_strategy,
    ablation_fixed_point,
    ablation_hop_length,
    ablation_table_reload,
    ablation_topology,
    ablation_utilization,
    related_softmax_comparison,
)


@pytest.mark.benchmark(group="ablations")
def test_ablation_breakpoints(benchmark, record_experiment):
    result = benchmark.pedantic(ablation_breakpoints, rounds=1, iterations=1)
    record_experiment(result, "ablation_breakpoints.txt")
    segments = result.column("Segments")
    exp_err = result.column("exp max err")
    # error falls steeply through the paper's operating point (the MLP's
    # non-convex training makes the >=32-segment tail noisy, so the
    # monotonicity claim is asserted up to 16)
    assert exp_err[0] > exp_err[1] > exp_err[2]
    # 16 segments is already in the "negligible" regime the paper claims
    # (Table I note), and bigger tables stay there
    err16 = exp_err[segments.index(16)]
    assert err16 < 0.01
    assert all(e < 0.01 for e in exp_err[2:])
    # beyond 16, the NoC clock multiplier doubles per step
    mults = result.column("NoC clock mult")
    assert mults == [1, 1, 2, 4, 8]


@pytest.mark.benchmark(group="ablations")
def test_ablation_fit_strategy(benchmark, record_experiment):
    result = benchmark.pedantic(ablation_fit_strategy, rounds=1, iterations=1)
    record_experiment(result, "ablation_fit_strategy.txt")
    for row in result.rows:
        name, mlp, curvature, uniform, lstsq = row
        # the MLP flow is competitive with the curvature fit ...
        assert mlp < 3 * curvature + 1e-4, name
        # ... and the curvature fit beats naive uniform placement on the
        # curvature-concentrated functions
        if name == "exp":
            assert curvature < uniform


@pytest.mark.benchmark(group="ablations")
def test_ablation_fixed_point(benchmark, record_experiment):
    result = benchmark.pedantic(ablation_fixed_point, rounds=1, iterations=1)
    record_experiment(result, "ablation_fixed_point.txt")
    rows = {row[0]: row for row in result.rows}
    # the default Q5.10 keeps quantisation subdominant to the PWL error
    q5_10 = rows["Q5.10"]
    assert q5_10[3] < 1.5 * q5_10[2]


@pytest.mark.benchmark(group="ablations")
def test_ablation_table_reload(benchmark, record_experiment):
    result = benchmark.pedantic(ablation_table_reload, rounds=1, iterations=1)
    record_experiment(result, "ablation_table_reload.txt")
    for row in result.rows:
        assert row[5] == 0  # NOVA never reloads
        assert row[3] > 0  # the LUT unit always does
    # reload overhead is a short-sequence phenomenon
    overheads = {(row[0], row[1]): float(str(row[4]).rstrip("%"))
                 for row in result.rows}
    for model in ("BERT-tiny", "RoBERTa"):
        assert overheads[(model, 128)] > overheads[(model, 1024)]


@pytest.mark.benchmark(group="ablations")
def test_ablation_hop_length(benchmark, record_experiment):
    result = benchmark.pedantic(ablation_hop_length, rounds=1, iterations=1)
    record_experiment(result, "ablation_hop_length.txt")
    areas = result.column("Area (um2)")
    assert areas == sorted(areas)  # wire term grows with pitch
    # NOVA keeps its win across the whole plausible pitch range
    assert all(result.column("Still beats per-neuron LUT"))


@pytest.mark.benchmark(group="ablations")
def test_ablation_topology(benchmark, record_experiment):
    result = benchmark.pedantic(ablation_topology, rounds=1, iterations=1)
    record_experiment(result, "ablation_topology.txt")
    rows = {row[0]: row for row in result.rows}
    # the line is wire-optimal over a row of routers (§III-A, quantified)
    assert rows["line"][1] <= rows["tree"][1] <= rows["star"][1]
    # and its critical path is within 2x of the tree's
    assert rows["line"][2] < 2.0 * rows["tree"][2] + 1e-9
    # every scheme keeps routers single-ported
    assert all(row[5] == 1 for row in result.rows)


@pytest.mark.benchmark(group="ablations")
def test_related_softmax_comparison(benchmark, record_experiment):
    result = benchmark.pedantic(
        related_softmax_comparison, rounds=1, iterations=1
    )
    record_experiment(result, "ablation_related_softmax.txt")
    rows = {row[0]: row for row in result.rows}
    # every implemented scheme preserves the attention argmax
    assert all(row[3] == 100 for row in result.rows)
    # scaled Softermax is exact up to its 2^r table; raw base-2 diverges
    assert rows["Softermax (scaled)"][1] < rows["NOVA (PWL-16)"][1]
    assert rows["Softermax (raw base-2)"][1] > rows["NOVA (PWL-16)"][1]
    # NOVA's PWL-16 stays in the 'negligible' band Table I demonstrates
    assert rows["NOVA (PWL-16)"][1] < 0.05


@pytest.mark.benchmark(group="ablations")
def test_ablation_utilization(benchmark, record_experiment):
    result = benchmark.pedantic(ablation_utilization, rounds=1, iterations=1)
    record_experiment(result, "ablation_utilization.txt")
    pc_ratios = [float(str(row[4]).rstrip("x")) for row in result.rows]
    sdp_ratios = [float(str(row[5]).rstrip("x")) for row in result.rows]
    # datapath-only LUT: the gap grows with duty (active energy dominates)
    assert pc_ratios == sorted(pc_ratios)
    # engine-style SDP: the gap is widest at *low* duty — the always-on
    # control keeps burning while NOVA's wires idle (the §V-E regime)
    assert sdp_ratios == sorted(sdp_ratios, reverse=True)
    assert sdp_ratios[0] > 5.0
