"""System benchmark: whole-batch kernel backends vs the loopback loop.

The acceptance gate for the pluggable kernel backends: serving a
long-decode continuous batch through the
:class:`~repro.core.decode.ContinuousBatchScheduler` with the default
``numpy`` backend (one whole-batch gather/MAC launch per phase per
scheduler step) must beat the pinned ``loopback`` reference backend —
the pre-kernel per-token Python execution — by **at least 3x
wall-clock**, while staying bit/cycle/counter-identical (the shared
harness in :func:`repro.eval.experiments.kernel_backend_throughput`
raises on any divergence before reporting a single number).

The workload is the regime the kernels target: a small-hidden causal
model decoding far past its prompt, so per-step time is dominated by
the vector-unit lookup/MAC stream rather than the host QKV GEMVs, and
the per-token loop's Python overhead is laid bare.  Any optional
accelerated backend installed in this process (numba, jax) rides along
in extra rows — reported, equivalence-checked, but not gated.

Alongside the rendered table the benchmark writes a machine-readable
JSON report (``benchmarks/results/kernel_backends.json``) that CI
uploads as an artifact.

Run with
``PYTHONPATH=src python -m pytest benchmarks/bench_kernel_backends.py -s``.
"""

import json

import pytest

from repro.eval.experiments import kernel_backend_throughput
from repro.workloads.transformer import TransformerConfig

#: Jetson Xavier NX-like overlay geometry (Table II preset).
GEOMETRY = "jetson-nx"
#: Small-hidden causal decoder: keeps the host-side QKV projections
#: cheap so the sweep measures the vector-unit execution strategy, not
#: shared GEMV time both paths pay identically.
MODEL = TransformerConfig(
    "GPT-nano",
    layers=2,
    hidden=128,
    heads=4,
    intermediate=512,
    seq_len=2048,
    causal=True,
)
BATCH_SIZE = 8
PROMPT_LEN = 16
MAX_NEW_TOKENS = 192  # long decode: the continuous-batch steady state
GATE_SPEEDUP = 3.0


@pytest.mark.benchmark(group="kernels")
def test_kernel_backend_speedup_gate(record_experiment, results_dir):
    result = kernel_backend_throughput(
        model_name=MODEL,
        batch_size=BATCH_SIZE,
        prompt_len=PROMPT_LEN,
        max_new_tokens=MAX_NEW_TOKENS,
        config=GEOMETRY,
        seed=0,
        warmup=True,
    )
    record_experiment(result, "kernel_backends.txt")

    labels = result.column("Backend")
    walls = result.column("Wall s")
    speedups = {
        label: walls[0] / wall for label, wall in zip(labels, walls)
    }
    assert labels[0].startswith("loopback"), (
        "the loopback reference backend must pin the first row "
        f"(denominator), got {labels[0]!r}"
    )
    numpy_rows = [label for label in labels if label.startswith("numpy")]
    assert numpy_rows, f"numpy backend row missing from {labels}"
    gated = speedups[numpy_rows[0]]
    assert gated >= GATE_SPEEDUP, (
        f"whole-batch numpy kernels must beat the per-token loopback "
        f"reference by >= {GATE_SPEEDUP}x wall-clock on the "
        f"{BATCH_SIZE} x {MODEL.name} long-decode sweep, got {gated:.2f}x"
    )

    report = {
        "benchmark": "kernel_backends",
        "geometry": GEOMETRY,
        "model": MODEL.name,
        "batch_size": BATCH_SIZE,
        "prompt_len": PROMPT_LEN,
        "max_new_tokens": MAX_NEW_TOKENS,
        "gate": {
            "metric": "numpy_vs_loopback_wall_clock",
            "threshold": GATE_SPEEDUP,
        },
        "numpy_speedup": round(gated, 4),
        "speedups": {k: round(v, 4) for k, v in speedups.items()},
        "rows": [dict(zip(result.headers, row)) for row in result.rows],
    }
    path = results_dir / "kernel_backends.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {path}")
