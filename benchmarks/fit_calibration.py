#!/usr/bin/env python
"""Regenerate the CALIBRATION_FACTORS table (provenance script).

Fits one multiplicative factor per (unit type, metric) as the geometric
mean of paper/model over every Table III data point, exactly as described
in repro/hw/calibration.py.  Run after changing any constant in
repro/hw/tech.py and paste the output into CALIBRATION_FACTORS.

Usage:  python benchmarks/fit_calibration.py
"""

from repro.hw.calibration import fit_calibration_factors


def main() -> None:
    factors = fit_calibration_factors()
    print("CALIBRATION_FACTORS: dict[tuple[str, str], float] = {")
    for (unit, metric), value in factors.items():
        print(f'    ("{unit}", "{metric}"): {value:.4f},')
    print("}")


if __name__ == "__main__":
    main()
