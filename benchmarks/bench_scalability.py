"""§V-A scalability: single-cycle multi-hop reach vs NoC clock."""

import pytest

from repro.core.mapper import NovaMapper
from repro.eval.experiments import scalability_sweep


@pytest.mark.benchmark(group="scalability")
def test_scalability_sweep(benchmark, record_experiment):
    result = benchmark(scalability_sweep)
    record_experiment(result, "scalability.txt")
    cells = {row[0]: row[1] for row in result.rows}
    # the paper's P&R corner: 10 routers at 1 mm pitch at 1.5 GHz
    assert cells[1.5] == 10
    # reach shrinks as the clock rises
    reaches = [cells[f] for f in sorted(cells)]
    assert reaches == sorted(reaches, reverse=True)


@pytest.mark.benchmark(group="scalability")
def test_latency_growth_past_envelope(benchmark):
    """Scaling beyond 10 routers trades latency (the §V-A trade-off)."""

    def sweep():
        mapper = NovaMapper()
        return [
            mapper.schedule(n, 0.75, n_pairs=16).total_latency_pe_cycles
            for n in (5, 10, 15, 20, 30, 40)
        ]

    latencies = benchmark(sweep)
    assert latencies[0] == latencies[1] == 2  # within the envelope
    assert latencies[2] > 2  # first step past it
    assert latencies == sorted(latencies)  # monotone growth
