"""System benchmark: continuous-batching decode vs one-at-a-time decode.

The acceptance gate for the autoregressive serving path: a batch of
causal decode requests served through
:class:`~repro.core.decode.ContinuousBatchScheduler` (prefill and decode
rows of every in-flight request fused into one lane stream per scheduler
step, cache pages recycled) must deliver at least 2x the wall-clock
tokens/sec of looping :meth:`~repro.core.decode.NovaDecodeEngine.generate`
one request at a time, while every request's generated tokens, per-step
sequential-equivalent ``vector_cycles`` and event counters stay identical
between the two paths (the shared harness in
:func:`repro.eval.experiments.decode_serving_throughput` raises on any
divergence before reporting).

The workload is a small causal transformer rather than GPT-2-small: at
GPT-2 width the wall clock of *both* paths is dominated by the per-token
q/k/v/out projections, which belong to the host's MXUs — on real
hardware they are orders of magnitude faster than numpy GEMVs, so
benchmarking them would measure numpy, not the serving machinery.  At a
small hidden width the overlay + scheduling overhead dominates, which is
exactly what continuous batching amortises.  The cycle-side win
(``packing_speedup``) is geometry-true at any width and is reported in
the table notes.

Run with
``PYTHONPATH=src python -m pytest benchmarks/bench_decode_serving.py -s``.
"""

import pytest

from repro.eval.experiments import decode_serving_throughput
from repro.workloads.transformer import TransformerConfig

#: Jetson Xavier NX-like overlay geometry (Table II preset): 2 routers x
#: 16 neurons — the small-lane serving case where keeping the unit fed
#: across requests pays.
GEOMETRY = "jetson-nx"
#: A small causal decoder (GPT-2 family shape, scaled down; see module
#: docstring for why the benchmark does not use GPT-2-small itself).
MODEL = TransformerConfig(
    "GPT-2-small/12x", layers=1, hidden=64, heads=4, intermediate=256,
    seq_len=256, causal=True,
)
BATCH_SIZE = 32
PROMPT_LEN = 4
MAX_NEW_TOKENS = 24


@pytest.mark.benchmark(group="serving")
def test_decode_serving_throughput(record_experiment):
    result = decode_serving_throughput(
        model_name=MODEL,
        batch_size=BATCH_SIZE,
        prompt_len=PROMPT_LEN,
        max_new_tokens=MAX_NEW_TOKENS,
        config=GEOMETRY,
        seed=0,
        max_active=BATCH_SIZE,
        warmup=True,
    )
    record_experiment(result, "decode_serving_throughput.txt")

    speedups = [float(str(cell).rstrip("x")) for cell in result.column("Speedup")]
    solo_s, batched_s = result.column("Wall s")
    assert speedups[-1] >= 2.0, (
        f"continuous batching must be >= 2x one-at-a-time decode, got "
        f"{speedups[-1]:.2f}x ({solo_s}s vs {batched_s}s)"
    )
