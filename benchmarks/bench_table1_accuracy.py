"""Table I: post-approximation accuracy (exact vs approx softmax).

Regenerates the full six-row table once (training the model zoo on the
synthetic stand-in datasets) and times the fastest row (MLP/MNIST) under
pytest-benchmark.  Asserts the paper's claim: approximating softmax with
the NN-LUT PWL (16 breakpoints; 8 for the CIFAR-10 family) costs at most
a fraction of a point of accuracy.
"""

import pytest

from repro.eval.experiments import table1_accuracy
from repro.ml.approx_inference import accuracy_with_softmax, table1_model_zoo


@pytest.mark.benchmark(group="table1")
def test_table1_full_zoo(benchmark, record_experiment):
    result = benchmark.pedantic(table1_accuracy, rounds=1, iterations=1)
    record_experiment(result, "table1_accuracy.txt")
    for row in result.rows:
        ours_exact, ours_approx = row[5], row[6]
        delta = abs(ours_approx - ours_exact)
        assert delta <= 0.5, f"approximation cost {delta} points on {row[0]}"
        # accuracy bands comparable to the paper's (all rows 55-100%)
        assert ours_exact > 55.0


@pytest.mark.benchmark(group="table1")
def test_table1_single_row_timing(benchmark):
    entry = table1_model_zoo()[0]  # MLP / MNIST-like: the fastest row
    result = benchmark.pedantic(
        accuracy_with_softmax, args=(entry,), rounds=1, iterations=1
    )
    assert result["approx"] == pytest.approx(result["exact"], abs=0.5)
