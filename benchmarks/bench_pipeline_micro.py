"""Microbenchmarks of the cycle simulators themselves.

Not a paper figure — these time the reproduction's own simulation
throughput (broadcasts/second, approximations/second) so regressions in
the simulator are visible, and compare the NOVA and LUT simulation paths
on identical work.
"""

import numpy as np
import pytest

from repro.approx.functions import get_function
from repro.approx.pwl import PiecewiseLinear
from repro.approx.quantize import QuantizedPwl, pack_beats
from repro.core.vector_unit import NovaVectorUnit
from repro.luts.per_core import PerCoreLutUnit
from repro.luts.per_neuron import PerNeuronLutUnit


@pytest.fixture(scope="module")
def table():
    spec = get_function("gelu")
    return QuantizedPwl(PiecewiseLinear.fit(spec.fn, spec.domain, 16))


@pytest.fixture(scope="module")
def batch():
    return np.random.default_rng(0).normal(0, 2.5, size=(8, 128))


@pytest.mark.benchmark(group="micro")
def test_nova_batch_simulation(benchmark, table, batch):
    unit = NovaVectorUnit(table, "tpu-v4")  # 8 x 128 @ 1.4 GHz, 0.5 mm hop
    result = benchmark(unit.approximate, batch)
    assert np.array_equal(result.outputs, unit.golden_reference(batch))


@pytest.mark.benchmark(group="micro")
def test_per_neuron_lut_batch_simulation(benchmark, table, batch):
    unit = PerNeuronLutUnit(table, 8, 128)
    result = benchmark(unit.approximate, batch)
    assert np.array_equal(result.outputs, table.evaluate(batch))


@pytest.mark.benchmark(group="micro")
def test_per_core_lut_batch_simulation(benchmark, table, batch):
    unit = PerCoreLutUnit(table, 8, 128)
    result = benchmark(unit.approximate, batch)
    assert np.array_equal(result.outputs, table.evaluate(batch))


@pytest.mark.benchmark(group="micro")
def test_broadcast_only(benchmark, table):
    unit = NovaVectorUnit(table, "react")  # 10 x 256 @ 0.24 GHz, 1 mm hop
    beats = pack_beats(table)
    addresses = np.random.default_rng(1).integers(0, 16, size=(10, 256))
    result = benchmark(unit.noc.broadcast, beats, addresses)
    assert result.noc_cycles == 2


@pytest.mark.benchmark(group="micro")
def test_golden_model_evaluation(benchmark, table, batch):
    out = benchmark(table.evaluate, batch)
    assert out.shape == batch.shape


@pytest.mark.benchmark(group="micro")
def test_compile_time_mlp_training(benchmark):
    from repro.approx.nnlut_mlp import train_nnlut_mlp

    spec = get_function("exp")
    mlp = benchmark.pedantic(
        lambda: train_nnlut_mlp(spec, n_segments=16, seed=0),
        rounds=1, iterations=1,
    )
    assert mlp.to_piecewise_linear(16).n_segments == 16
