"""Fig 7: router power vs neurons mapped per router."""

import pytest

from repro.eval.ascii_chart import multi_series_chart
from repro.eval.experiments import fig7_power_scaling


@pytest.mark.benchmark(group="fig7")
def test_fig7_power_scaling(benchmark, record_experiment):
    result = benchmark(fig7_power_scaling)
    record_experiment(result, "fig7_power_scaling.txt")
    print()
    print(
        multi_series_chart(
            result.column("Neurons"),
            {
                "NOVA": result.column("NOVA router"),
                "per-neuron LUT": result.column("Per-neuron LUT"),
                "per-core LUT": result.column("Per-core LUT"),
            },
            title="Fig 7 shape: router power (mW @1GHz) vs neurons",
        )
    )
    nova = result.column("NOVA router")
    pn = result.column("Per-neuron LUT")
    pc = result.column("Per-core LUT")
    # the multi-ported per-core bank is the most power-hungry at scale
    # (§V-B / §V-C.2) while NOVA is the least
    assert nova[-1] < pn[-1] < pc[-1]
    # per-core's port cost makes it overtake per-neuron somewhere in the
    # sweep (the crossover the paper's power discussion hinges on)
    crossed = any(c > n for c, n in zip(pc, pn))
    assert crossed
    # NOVA's saving vs per-core grows monotonically with neuron count
    savings = [float(str(r[4]).rstrip("x")) for r in result.rows]
    assert savings == sorted(savings)
    assert savings[-1] > 5.0  # paper reaches 9.4x at TPU scale
