"""System benchmark: speculative draft-and-verify decode speedup.

The acceptance gate for speculative decode: under a workload whose
draft achieves at least a **0.7 measured acceptance rate**, one-at-a-time
draft-and-verify generation must deliver at least **1.3x more
tokens/sec** than plain KV-cached generation at the Jetson-like Table II
geometry — while every speculative path stays bit-identical to plain
``generate`` (the shared harness in
:func:`repro.eval.experiments.speculative_decode_speedup` raises on any
divergence before reporting, and additionally checks each speculative
result's closed-form sequential-equivalent cycles against the plain
run's).

The win is the fold-small-ops-into-one-pass effect the ROADMAP names: a
single decode row leaves most of the overlay's per-pass overhead (table
retarget, stream setup, packed accounting) amortised over one token;
a verification pass amortises it over up to ``spec_k + 1`` tokens, and
high acceptance means little of that work rolls back.

Run with
``PYTHONPATH=src python -m pytest benchmarks/bench_speculative.py -s``.
"""

import pytest

from repro.eval.experiments import speculative_decode_speedup

#: Jetson Xavier NX-like overlay geometry (Table II preset).
GEOMETRY = "jetson-nx"
BATCH_SIZE = 8
MAX_NEW_TOKENS = 32
#: Draft depth: one verification pass scores up to SPEC_K + 1 positions.
SPEC_K = 12
#: Target long-run acceptance rate the workload's draft fidelity is
#: solved for (the measured rate is asserted >= 0.7 below).
ACCEPTANCE = 0.9


@pytest.mark.benchmark(group="serving")
def test_speculative_decode_speedup(record_experiment):
    result = speculative_decode_speedup(
        batch_size=BATCH_SIZE,
        max_new_tokens=MAX_NEW_TOKENS,
        config=GEOMETRY,
        spec_k=SPEC_K,
        acceptance_rate=ACCEPTANCE,
        seed=0,
        warmup=True,
    )
    record_experiment(result, "speculative_decode_speedup.txt")

    plain_row, solo_row, batched_row = result.rows
    acceptance = float(solo_row[result.headers.index("Acceptance")])
    assert acceptance >= 0.7, (
        f"the gate is defined at a >= 0.7 acceptance-rate workload, but "
        f"the draft only reached {acceptance:.2f}; raise the target "
        "acceptance_rate or spec_k"
    )

    plain_tps = plain_row[result.headers.index("Tokens/s")]
    solo_tps = solo_row[result.headers.index("Tokens/s")]
    speedup = solo_tps / plain_tps
    assert speedup >= 1.3, (
        f"speculative decode must deliver >= 1.3x tokens/sec over plain "
        f"KV-cached generate at {GEOMETRY} (acceptance "
        f"{acceptance:.2f}), got {speedup:.2f}x "
        f"({solo_tps} vs {plain_tps} tokens/sec)"
    )
    # the speculative scheduler fuses verification passes across
    # requests on top of that; it must never be slower than solo
    # speculation
    batched_tps = batched_row[result.headers.index("Tokens/s")]
    assert batched_tps / plain_tps >= 1.3
