"""Fig 6: router area vs neurons mapped per router."""

import pytest

from repro.eval.ascii_chart import multi_series_chart
from repro.eval.experiments import fig6_area_scaling


@pytest.mark.benchmark(group="fig6")
def test_fig6_area_scaling(benchmark, record_experiment):
    result = benchmark(fig6_area_scaling)
    record_experiment(result, "fig6_area_scaling.txt")
    print()
    print(
        multi_series_chart(
            result.column("Neurons"),
            {
                "NOVA": result.column("NOVA router"),
                "per-neuron LUT": result.column("Per-neuron LUT"),
                "per-core LUT": result.column("Per-core LUT"),
            },
            title="Fig 6 shape: router area (um2) vs neurons",
        )
    )
    nova = result.column("NOVA router")
    pn = result.column("Per-neuron LUT")
    pc = result.column("Per-core LUT")
    # all three curves grow with neuron count ...
    for series in (nova, pn, pc):
        assert series == sorted(series)
    # ... but NOVA grows far slower (Fig. 6's visual shape):
    assert nova[-1] / nova[0] < 0.5 * (pn[-1] / pn[0])
    # per-neuron is the largest at scale, NOVA the smallest
    assert nova[-1] < pc[-1] < pn[-1]
    # savings reach the paper's ~3.23x average by 128-256 neurons
    last_saving = float(str(result.rows[-1][4]).rstrip("x"))
    assert last_saving > 3.0
