"""Table III: area/power overhead of NOVA vs the LUT baselines.

Regenerates every (accelerator, approximator) cell from the calibrated
component cost model and asserts the paper's headline savings hold in
direction and rough magnitude.
"""

import pytest

from repro.eval.experiments import table3_overhead


def cells(result, col):
    idx = result.headers.index(col)
    return {(r[0], r[1]): r[idx] for r in result.rows}


@pytest.mark.benchmark(group="table3")
def test_table3_overhead(benchmark, record_experiment):
    result = benchmark(table3_overhead)
    record_experiment(result, "table3_overhead.txt")

    area = cells(result, "Area mm2 (model)")
    power = cells(result, "Power mW (model)")

    # REACT §V-C: area savings 3.34x / 1.78x in the paper; require the
    # same ordering and the right ballpark.
    react_pn = area[("REACT", "per_neuron_lut")] / area[("REACT", "nova")]
    react_pc = area[("REACT", "per_core_lut")] / area[("REACT", "nova")]
    assert 2.0 < react_pn < 5.0 and 1.2 < react_pc < 3.5
    assert react_pn > react_pc

    # TPU §V-D: area improvement over 3x, power saving large (paper >9.4x
    # against their per-core number).
    for acc in ("TPU v3-like", "TPU v4-like"):
        assert area[(acc, "per_neuron_lut")] / area[(acc, "nova")] > 2.5
        assert power[(acc, "per_core_lut")] / power[(acc, "nova")] > 3.0

    # NVDLA §V-E: area ~4.99x, power ~37.8x in the paper.
    nvdla_area = (area[("Jetson Xavier NX", "nvdla_sdp")]
                  / area[("Jetson Xavier NX", "nova")])
    nvdla_power = (power[("Jetson Xavier NX", "nvdla_sdp")]
                   / power[("Jetson Xavier NX", "nova")])
    assert nvdla_area > 2.5
    assert nvdla_power > 10.0


@pytest.mark.benchmark(group="table3")
def test_table3_raw_model_same_orderings(benchmark):
    """The orderings must come from the physics, not the calibration."""
    result = benchmark.pedantic(
        table3_overhead, kwargs={"calibrated": False}, rounds=1, iterations=1
    )
    area = cells(result, "Area mm2 (model)")
    power = cells(result, "Power mW (model)")
    for acc in ("REACT", "TPU v3-like", "TPU v4-like"):
        assert area[(acc, "nova")] < area[(acc, "per_core_lut")]
        assert area[(acc, "per_core_lut")] < area[(acc, "per_neuron_lut")]
        assert power[(acc, "nova")] < power[(acc, "per_neuron_lut")]
        assert power[(acc, "per_neuron_lut")] < power[(acc, "per_core_lut")]
