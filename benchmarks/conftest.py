"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper table/figure, times the regeneration
with pytest-benchmark, prints the rendered rows (so ``pytest benchmarks/
--benchmark-only -s`` shows the paper-vs-model comparison) and writes them
to ``benchmarks/results/<experiment>.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.eval.experiments import ExperimentResult
from repro.eval.report import render_experiment

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory for rendered experiment outputs."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_experiment(results_dir):
    """Render, print and persist an ExperimentResult."""

    def _record(result: ExperimentResult, filename: str) -> str:
        text = render_experiment(result)
        (results_dir / filename).write_text(text + "\n")
        print()
        print(text)
        return text

    return _record
