"""Table IV: NOVA lane vs NACU / I-BERT hardware overhead."""

import pytest

from repro.eval.experiments import table4_related_work


@pytest.mark.benchmark(group="table4")
def test_table4_related_work(benchmark, record_experiment):
    result = benchmark.pedantic(table4_related_work, rounds=1, iterations=1)
    record_experiment(result, "table4_related.txt")
    rows = {row[0]: row for row in result.rows}
    nova_area_model = rows["NOVA"][2]
    # our modelled NOVA lane is smaller than both related approximators'
    # published areas — the Table IV ordering
    assert nova_area_model < rows["I-BERT"][3] < rows["NACU"][3]
    # and within 2x of the paper's own NOVA lane figure
    assert 0.5 < nova_area_model / rows["NOVA"][3] < 2.0
    # the I-BERT lane is *computed* from its implemented integer pipeline
    # and must land near its published area and above NOVA in both metrics
    ibert_area_model = rows["I-BERT"][2]
    assert 0.5 < ibert_area_model / rows["I-BERT"][3] < 2.0
    assert ibert_area_model > nova_area_model
    assert rows["I-BERT"][4] > rows["NOVA"][4]  # modelled power
    # both implemented approximators hit I-BERT-grade exp accuracy
    assert rows["I-BERT"][6] < 0.01
    assert rows["NOVA"][6] < 0.01
