"""System benchmark: draft-tree speculation vs a linear draft chain.

The acceptance gate for tree speculation: at the Jetson-like Table II
geometry, with both paths staking the **same number of provisional
tokens per verification pass** (the linear chain's depth is pinned to
the tree's node count) and drafting with the **same per-candidate
fidelity coin**, scoring a draft *tree* in one packed pass must
deliver at least **1.15x more tokens/sec** than the linear chain —
while both paths stay bit-identical to plain ``generate`` (the shared
harness in :func:`repro.eval.experiments.tree_speculation_speedup`
raises on any divergence before reporting).

The workload is the regime trees are for: a low-fidelity draft.  A
deep linear chain dies at its first rejected position, so most of its
budget is rolled back every pass; a wide first level usually keeps
*some* branch alive, so the same budget commits more tokens per pass
— which shows up both in wall-clock tokens/sec and in the
deterministic packed cycles/token (asserted as a noise-free secondary
gate).

Alongside the rendered table the benchmark writes a machine-readable
JSON report (``benchmarks/results/tree_speculation_speedup.json``)
that CI uploads as an artifact.

Run with
``PYTHONPATH=src python -m pytest benchmarks/bench_tree_speculation.py -s``.
"""

import json

import pytest

from repro.eval.experiments import tree_speculation_speedup

#: Jetson Xavier NX-like overlay geometry (Table II preset).
GEOMETRY = "jetson-nx"
BATCH_SIZE = 8
MAX_NEW_TOKENS = 32
#: Wide-first draft tree: 4 alternatives at depth 1, 2 at depth 2, 1 at
#: depth 3 = 20 nodes, so the linear baseline runs at spec_k = 20.
SPEC_TREE = "4x1,2x1,1x1"
#: Per-candidate probability that a draft is exact — low on purpose:
#: trees pay off when any single draft is usually wrong.
FIDELITY = 0.45


@pytest.mark.benchmark(group="serving")
def test_tree_speculation_speedup_gate(record_experiment, results_dir):
    result = tree_speculation_speedup(
        batch_size=BATCH_SIZE,
        max_new_tokens=MAX_NEW_TOKENS,
        config=GEOMETRY,
        spec_tree=SPEC_TREE,
        fidelity=FIDELITY,
        seed=0,
        warmup=True,
    )
    record_experiment(result, "tree_speculation_speedup.txt")

    linear_row, tree_row = result.rows
    tokens_per_sec = result.column("Tokens/s")
    speedup = tokens_per_sec[1] / tokens_per_sec[0]
    assert speedup >= 1.15, (
        f"a draft tree must deliver >= 1.15x tokens/sec over a linear "
        f"chain staking the same {SPEC_TREE}-node verification budget "
        f"at {GEOMETRY} (fidelity {FIDELITY}), got {speedup:.2f}x "
        f"({tokens_per_sec[1]} vs {tokens_per_sec[0]} tokens/sec)"
    )
    # the win must come from committing more of the same budget, not
    # from timing noise: both supporting metrics are deterministic
    tokens_per_pass = result.column("Tokens/pass")
    assert tokens_per_pass[1] > tokens_per_pass[0], (
        f"the tree must commit more tokens per verification pass, got "
        f"{tokens_per_pass[1]} vs {tokens_per_pass[0]}"
    )
    cycles_per_token = result.column("Cycles/token")
    assert cycles_per_token[1] < cycles_per_token[0], (
        f"the tree must spend fewer packed cycles per committed token, "
        f"got {cycles_per_token[1]} vs {cycles_per_token[0]}"
    )

    report = {
        "benchmark": "tree_speculation_speedup",
        "geometry": GEOMETRY,
        "batch_size": BATCH_SIZE,
        "max_new_tokens": MAX_NEW_TOKENS,
        "spec_tree": SPEC_TREE,
        "fidelity": FIDELITY,
        "gate": {"metric": "tokens_per_sec_speedup", "threshold": 1.15},
        "speedup": round(speedup, 4),
        "tokens_per_pass": {
            "linear": tokens_per_pass[0],
            "tree": tokens_per_pass[1],
        },
        "cycles_per_token": {
            "linear": cycles_per_token[0],
            "tree": cycles_per_token[1],
        },
        "rows": [
            dict(zip(result.headers, row)) for row in result.rows
        ],
    }
    path = results_dir / "tree_speculation_speedup.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {path}")
