"""System benchmark: a full attention layer on the overlay.

Not a paper figure — this times the reproduction's flagship composed
path (compile-time tables -> comparators -> NoC broadcast -> MACs ->
softmax assembly) and asserts its end-to-end numerical fidelity, so the
title-level capability has a guarded performance number.
"""

import numpy as np
import pytest

from repro.core.attention import NovaAttentionEngine


@pytest.fixture(scope="module")
def engine():
    # the Jetson-like Table II geometry (2 routers x 16 lanes @ 1.4 GHz)
    return NovaAttentionEngine("jetson-nx")


@pytest.fixture(scope="module")
def layer():
    rng = np.random.default_rng(0)
    hidden = 16
    x = rng.normal(0.0, 1.0, size=(8, hidden))
    weights = {
        name: rng.normal(0.0, 1.0 / np.sqrt(hidden), size=(hidden, hidden))
        for name in ("wq", "wk", "wv", "wo")
    }
    return x, weights


@pytest.mark.benchmark(group="attention")
def test_attention_layer_on_overlay(benchmark, engine, layer):
    x, weights = layer
    result = benchmark.pedantic(
        engine.attention_layer,
        args=(x,),
        kwargs={"n_heads": 2, **weights},
        rounds=3,
        iterations=1,
    )
    exact = engine.exact_attention_layer(x, n_heads=2, **weights)
    rel = np.max(np.abs(result.outputs - exact)) / np.max(np.abs(exact))
    assert rel < 0.02
    assert result.counters.get("lut_read") == 0


@pytest.mark.benchmark(group="attention")
def test_hardware_softmax_only(benchmark, engine):
    scores = np.random.default_rng(1).normal(0, 2, size=(2, 16, 16))
    probs, _cycles = benchmark.pedantic(
        engine.softmax, args=(scores,), rounds=3, iterations=1
    )
    assert np.allclose(probs.sum(axis=-1), 1.0)
