"""System benchmark: shared-prefix pool residency under prefix caching.

The acceptance gate for prefix caching: serving a batch of causal
decode requests that share one system-prompt-sized prefix through the
paged :class:`~repro.core.decode.ContinuousBatchScheduler`, turning the
prefix index on must cut **peak pool residency by at least 2x** at the
Jetson-like Table II geometry with at least 8 requests sharing the
prefix — while the cached path stays bit/cycle/counter-identical to
one-at-a-time ``generate`` (the shared harness in
:func:`repro.eval.experiments.prefix_caching_residency` raises on any
divergence before reporting).

The workload is the regime the feature targets: every prompt opens with
the same 64-token preamble (4 full 16-token blocks at the preset
``kv_block_size``) plus a tiny private suffix, so without sharing the
pool stores ``batch_size`` copies of the same KV rows and with sharing
it stores one copy under a refcount.

Alongside the rendered table the benchmark writes a machine-readable
JSON report (``benchmarks/results/prefix_caching_residency.json``) that
CI uploads as an artifact.

Run with
``PYTHONPATH=src python -m pytest benchmarks/bench_prefix_caching.py -s``.
"""

import json

import pytest

from repro.eval.experiments import prefix_caching_residency

#: Jetson Xavier NX-like overlay geometry (Table II preset), whose
#: ``kv_block_size`` preset default (16 tokens) sets the block size.
GEOMETRY = "jetson-nx"
BATCH_SIZE = 8  # the gate requires >= 8 requests sharing the prefix
PREFIX_TOKENS = 64  # 4 full blocks at the preset block size
SUFFIX_TOKENS = 2
MAX_NEW_TOKENS = 4


@pytest.mark.benchmark(group="serving")
def test_prefix_caching_residency_gate(record_experiment, results_dir):
    result = prefix_caching_residency(
        batch_size=BATCH_SIZE,
        prefix_tokens=PREFIX_TOKENS,
        suffix_tokens=SUFFIX_TOKENS,
        max_new_tokens=MAX_NEW_TOKENS,
        config=GEOMETRY,
        seed=0,
        warmup=True,
    )
    record_experiment(result, "prefix_caching_residency.txt")

    plain_peak, cached_peak = result.column("Peak KV slots")
    reduction = plain_peak / cached_peak
    assert reduction >= 2.0, (
        f"prefix caching must cut peak pool residency >= 2x with "
        f"{BATCH_SIZE} requests sharing a {PREFIX_TOKENS}-token prefix, "
        f"got {reduction:.2f}x ({plain_peak} vs {cached_peak} slots)"
    )
    # the win comes from adoption, not from skipping work: the cached
    # row must show real index hits and shared blocks
    assert result.column("Prefix hits")[1] > 0
    assert result.column("Blocks shared")[1] > 0

    report = {
        "benchmark": "prefix_caching_residency",
        "geometry": GEOMETRY,
        "batch_size": BATCH_SIZE,
        "prefix_tokens": PREFIX_TOKENS,
        "suffix_tokens": SUFFIX_TOKENS,
        "max_new_tokens": MAX_NEW_TOKENS,
        "gate": {"metric": "peak_residency_reduction", "threshold": 2.0},
        "peak_kv_slots": {"uncached": plain_peak, "cached": cached_peak},
        "reduction": round(reduction, 4),
        "prefix_hits": result.column("Prefix hits")[1],
        "blocks_shared": result.column("Blocks shared")[1],
        "cow_copies": result.column("CoW copies")[1],
        "rows": [
            dict(zip(result.headers, row)) for row in result.rows
        ],
    }
    path = results_dir / "prefix_caching_residency.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {path}")
