"""System benchmark: paged-KV admission capacity vs contiguous pages.

The acceptance gate for the paged KV cache: serving a *mixed-length*
batch of causal decode requests under one fixed pool byte budget, the
paged scheduler (fixed-size blocks from a shared
:class:`~repro.core.paging.BlockPool`, lazy allocation, first-block-fit
admission) must keep at least **1.5x more requests concurrently in
flight** than the contiguous scheduler (whole worst-case pages) at the
Jetson-like Table II geometry — while both paths stay bit/cycle/counter-
identical to one-at-a-time ``generate`` (the shared harness in
:func:`repro.eval.experiments.paged_decode_utilization` raises on any
divergence before reporting).

The workload is the regime the refactor targets: every request declares
the model's full 256-token context as its worst case, but the mix
actually caches only 8-28 tokens, so contiguous admission strands
~90% of every page while blocks strand at most ``block_size - 1`` slots
per request.

Run with
``PYTHONPATH=src python -m pytest benchmarks/bench_paged_admission.py -s``.
"""

import pytest

from repro.eval.experiments import paged_decode_utilization

#: Jetson Xavier NX-like overlay geometry (Table II preset), whose
#: ``kv_block_size`` preset default (16 tokens) sets the block size.
GEOMETRY = "jetson-nx"
BATCH_SIZE = 16
POOL_PAGES = 4  # the byte budget: four contiguous worst-case pages


@pytest.mark.benchmark(group="serving")
def test_paged_admission_capacity(record_experiment):
    result = paged_decode_utilization(
        batch_size=BATCH_SIZE,
        config=GEOMETRY,
        pool_pages=POOL_PAGES,
        seed=0,
        warmup=True,
    )
    record_experiment(result, "paged_admission_capacity.txt")

    contiguous, paged = result.column("Peak concurrent")
    gain = paged / contiguous
    assert gain >= 1.5, (
        f"paged KV must admit >= 1.5x more concurrent requests than "
        f"contiguous pages at the same pool bytes, got {gain:.2f}x "
        f"({paged} vs {contiguous})"
    )
    # the win comes from not stranding memory: paged fragmentation must
    # be below the contiguous scheduler's at the same budget
    contiguous_frag, paged_frag = result.column("Peak fragmentation")
    assert paged_frag < contiguous_frag
