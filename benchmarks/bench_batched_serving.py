"""System benchmark: batched attention serving vs the sequential engine.

The acceptance gate for the serving path: a batch of 16 BERT-base
attention layers through :class:`BatchedNovaAttentionEngine` (one shared
overlay, lane packing, cached tables/schedules, vectorised streams) must
deliver at least 3x the wall-clock throughput of looping the
cycle-accurate single-request :class:`NovaAttentionEngine`, while every
request's ``vector_cycles`` and event counters — the hardware cost
model — stay identical between the two paths and outputs stay bit-exact
(the shared harness in
:func:`repro.eval.experiments.batched_serving_throughput` raises on any
divergence before reporting).

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_batched_serving.py -s``.
"""

import pytest

from repro.eval.experiments import batched_serving_throughput

#: Jetson Xavier NX-like overlay geometry (Table II preset): 2 routers x
#: 16 neurons.  The small lane count is the interesting serving case —
#: each request needs thousands of PE cycles, so keeping the unit fed
#: across request boundaries is where batching pays.
GEOMETRY = "jetson-nx"
BATCH_SIZE = 16
SEQ_LEN = 64  # BERT-base attention at a serving-typical sequence length


@pytest.mark.benchmark(group="serving")
def test_batched_serving_throughput(record_experiment):
    result = batched_serving_throughput(
        model_name="BERT-base",
        batch_size=BATCH_SIZE,
        seq_len=SEQ_LEN,
        config=GEOMETRY,
        seed=0,
        warmup=True,
    )
    record_experiment(result, "serving_throughput.txt")

    speedups = [float(str(cell).rstrip("x")) for cell in result.column("Speedup")]
    sequential_s, batched_s = result.column("Wall s")
    assert speedups[-1] >= 3.0, (
        f"batched serving must be >= 3x the sequential engine, got "
        f"{speedups[-1]:.2f}x ({sequential_s}s vs {batched_s}s)"
    )
