"""Fig 8: per-inference energy for the five BERT-family benchmarks.

Runs every benchmark through the SCALE-Sim-style host timing models and
prices the approximator energy under NOVA and both LUT baselines, in both
the paper's accounting (synthesis power x runtime) and the finer
activity-aware accounting.
"""

import pytest

from repro.eval.experiments import fig8_energy


def col(result, name):
    idx = result.headers.index(name)
    return [row[idx] for row in result.rows]


@pytest.mark.benchmark(group="fig8")
def test_fig8_energy(benchmark, record_experiment):
    result = benchmark.pedantic(fig8_energy, rounds=1, iterations=1)
    record_experiment(result, "fig8_energy.txt")

    # NOVA has the lowest energy on every (host, benchmark) pair
    for row in result.rows:
        nova, pn, pc = row[3], row[4], row[5]
        assert nova < pn and nova < pc

    # paper-method ratios on TPU-v4 reproduce the §V-F shape: the LUT
    # baselines cost multiples of NOVA per inference
    for row in result.rows:
        if row[0] != "TPU v4-like":
            continue
        pn_ratio = float(str(row[8]).rstrip("x"))
        pc_ratio = float(str(row[9]).rstrip("x"))
        assert pn_ratio > 3.0  # paper: 4.14x
        assert pc_ratio > 5.0  # paper: 9.4x

    # NOVA's overhead against the host's own energy is small on the
    # systolic hosts (paper: ~0.5% on TPU-v4)
    for row in result.rows:
        if row[0].startswith("TPU"):
            assert row[10] < 5.0


@pytest.mark.benchmark(group="fig8")
def test_fig8_energy_scales_with_model_size(benchmark, record_experiment):
    result = benchmark.pedantic(fig8_energy, rounds=1, iterations=1)
    # within each host, RoBERTa (largest) costs the most NOVA energy and
    # BERT-tiny (smallest) the least — Fig. 8's bar ordering
    for host in ("REACT", "TPU v3-like", "TPU v4-like"):
        energies = {
            row[1]: row[3] for row in result.rows if row[0] == host
        }
        assert energies["RoBERTa"] == max(energies.values())
        assert energies["BERT-tiny"] == min(energies.values())
