"""System benchmark: the async front door's SLO-aware scheduling gate.

The acceptance gate for ``repro.serving``: at one fixed seeded bursty
heavy-tailed trace (Pareto prompt lengths and token budgets, flash-crowd
arrivals, per-request deadlines at 2x the fair solo service time) and
one fixed slot budget, the :class:`~repro.serving.policies.SLOAware`
policy must **beat FCFS on p99 time-to-first-token without losing
goodput** — earliest-deadline-first admission stops one giant request
from head-of-line-blocking a crowd of short ones, so the tail TTFT
collapses while deadline-meeting tokens per cycle hold.

Correctness is gated before any SLO number is trusted: the shared
harness (:func:`repro.eval.experiments.serving_slo_comparison`) checks
every policy's per-request outputs, cycles and event counters
bit-identical to solo ``generate`` and raises on divergence.  All times
are virtual cycles on the scheduler's deterministic clock, so this gate
is exactly reproducible — no wall-clock noise, no flake margin.

Run with
``PYTHONPATH=src python -m pytest benchmarks/bench_frontdoor.py -s``.
"""

import pytest

from repro.eval.experiments import serving_slo_comparison

#: Jetson Xavier NX-like overlay geometry (Table II preset).
GEOMETRY = "jetson-nx"
N_REQUESTS = 48
MAX_ACTIVE = 2  # the scarce slot budget that forms an admission queue
SEED = 4


@pytest.mark.benchmark(group="serving")
def test_slo_aware_beats_fcfs(record_experiment):
    result = serving_slo_comparison(
        n_requests=N_REQUESTS,
        config=GEOMETRY,
        seed=SEED,
        max_active=MAX_ACTIVE,
    )
    record_experiment(result, "serving_slo_comparison.txt")

    policies = result.column("Policy")
    p99_ttft = dict(zip(policies, result.column("p99 TTFT")))
    goodput = dict(zip(policies, result.column("Goodput tok/kcyc")))

    assert p99_ttft["slo-aware"] < p99_ttft["fcfs"], (
        f"SLO-aware admission must beat FCFS on p99 TTFT at the same "
        f"slot budget, got {p99_ttft['slo-aware']} vs {p99_ttft['fcfs']} "
        f"virtual cycles"
    )
    assert goodput["slo-aware"] >= goodput["fcfs"], (
        f"the p99 TTFT win must not cost goodput, got "
        f"{goodput['slo-aware']} vs {goodput['fcfs']} tokens/kcycle"
    )


@pytest.mark.benchmark(group="serving")
def test_policies_hold_in_paged_mode(record_experiment):
    # The same trace in the paged-KV memory mode: the policy layer sits
    # above the memory model, so the gate must hold unchanged (and the
    # harness re-checks bit-exactness against solo generate).
    result = serving_slo_comparison(
        n_requests=N_REQUESTS,
        config=GEOMETRY,
        seed=SEED,
        max_active=MAX_ACTIVE,
        paged=True,
    )
    record_experiment(result, "serving_slo_comparison_paged.txt")

    policies = result.column("Policy")
    p99_ttft = dict(zip(policies, result.column("p99 TTFT")))
    goodput = dict(zip(policies, result.column("Goodput tok/kcyc")))
    assert p99_ttft["slo-aware"] < p99_ttft["fcfs"]
    assert goodput["slo-aware"] >= goodput["fcfs"]
