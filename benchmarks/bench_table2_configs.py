"""Table II: accelerator parameters + the mapper's derived broadcast plan."""

import pytest

from repro.eval.experiments import table2_configs


@pytest.mark.benchmark(group="table2")
def test_table2_configs(benchmark, record_experiment):
    result = benchmark(table2_configs)
    record_experiment(result, "table2_configs.txt")
    # every Table II configuration broadcasts in a single cycle (§V-A)
    assert all(result.column("Single-cycle"))
    # 16 breakpoints => 2 beats => NoC at 2x the PE clock (§IV)
    assert all(b == 2 for b in result.column("Beats"))
